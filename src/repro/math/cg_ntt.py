"""Constant-geometry (Pease) negacyclic NTT — Algorithm 4 of the paper.

Every stage of a constant-geometry NTT reads the butterfly pair
``(a[j], a[j + N/2])`` and writes the results to ``(ā[2j], ā[2j+1])``;
the read/write geometry never changes between stages, which is what lets
CHAM wire a *fixed* datapath between the BFUs and the RAM banks instead of
the stage-variant multiplexer trees that HEAX needs (Section IV-A1).

The price is that the twiddle factor consumed by butterfly ``j`` in stage
``i`` follows a permuted schedule.  Rather than hard-coding a closed form,
:func:`constant_geometry_schedule` *derives* the schedule from the standard
merged Cooley-Tukey NTT by tracking the data permutation ``π_i`` between
the two networks:

* invariant: CG state ``A_i[k] = C_i[π_i[k]]`` where ``C_i`` is the
  Cooley-Tukey state;
* ``π_{i+1}[2j] = π_i[j]`` and ``π_{i+1}[2j+1] = π_i[j] + t_i``;
* the twiddle for CG butterfly ``j`` is the CT twiddle of block
  ``π_i[j] >> (log2 N - i)``.

This yields a provably-equivalent network (tested against the gold model
and against schoolbook convolution), plus the exact per-stage twiddle ROM
layout of Fig. 4, which :mod:`repro.hw.ntt_datapath` consumes to model the
per-BFU ROM banks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List

import numpy as np

from .modular import modadd_vec, modinv, modmul_vec, modsub_vec
from .ntt import _tables, freeze_array  # twiddle tables shared with the gold model

__all__ = [
    "CgSchedule",
    "constant_geometry_schedule",
    "CgNtt",
    "cg_ntt_cycles",
]


@dataclass(frozen=True)
class CgSchedule:
    """Derived constant-geometry schedule for one ``(n, q)`` pair.

    Attributes
    ----------
    n, q:
        Transform size and modulus.
    twiddles:
        ``(log2 n, n/2)`` array; ``twiddles[i, j]`` is the factor used by
        butterfly ``j`` of stage ``i`` (the ROM contents of Fig. 4).
    inv_twiddles:
        Element-wise inverses, consumed by the mirrored inverse network.
    output_perm:
        Permutation ``σ`` with ``cg_output[k] = gold_output[σ[k]]`` where
        the gold output is the merged-CT bit-reversed-order NTT.
    n_inv:
        ``n^{-1} mod q`` (final inverse-transform scaling).
    """

    n: int
    q: int
    twiddles: np.ndarray
    inv_twiddles: np.ndarray
    output_perm: np.ndarray
    n_inv: int

    @property
    def stages(self) -> int:
        return int(self.n).bit_length() - 1

    def rom_bank_contents(self, n_bfu: int) -> List[np.ndarray]:
        """Per-BFU twiddle ROM contents (Section IV-A2).

        In each clock cycle the ``n_bfu`` BFUs consume one *column* of the
        stage's twiddle sequence, so BFU ``b`` owns every
        ``(k*n_bfu + b)``-th factor of every stage, concatenated in stage
        order.  Each ROM therefore stores exactly
        ``(n/2 * log2 n) / n_bfu`` words — the ``N`` total factors of the
        paper divided across banks.
        """
        if (self.n // 2) % n_bfu:
            raise ValueError(f"n_bfu={n_bfu} does not divide n/2={self.n // 2}")
        return [
            np.concatenate([self.twiddles[i, b::n_bfu] for i in range(self.stages)])
            for b in range(n_bfu)
        ]


@lru_cache(maxsize=None)
def constant_geometry_schedule(n: int, q: int) -> CgSchedule:
    """Derive the CG twiddle schedule and output permutation for ``(n, q)``."""
    if n & (n - 1) or n < 2:
        raise ValueError(f"n={n} must be a power of two >= 2")
    psis, _inv_psis, n_inv = _tables(n, q)
    log_n = n.bit_length() - 1
    half = n // 2

    twiddles = np.empty((log_n, half), dtype=np.uint64)
    perm = np.arange(n, dtype=np.int64)
    for i in range(log_n):
        t = n >> (i + 1)
        m = 1 << i
        block = perm[:half] >> (log_n - i)  # CT block index of each butterfly
        twiddles[i] = psis[m + block]
        nxt = np.empty(n, dtype=np.int64)
        nxt[0::2] = perm[:half]
        nxt[1::2] = perm[:half] + t
        perm = nxt

    inv_twiddles = np.empty_like(twiddles)
    for i in range(log_n):
        inv_twiddles[i] = np.array(
            [modinv(int(w), q) for w in twiddles[i]], dtype=np.uint64
        )
    return CgSchedule(
        n=n,
        q=q,
        twiddles=freeze_array(twiddles),
        inv_twiddles=freeze_array(inv_twiddles),
        output_perm=freeze_array(perm),
        n_inv=n_inv,
    )


class CgNtt:
    """Functional model of CHAM's constant-geometry NTT/INTT unit.

    The forward network runs Algorithm 4; the inverse network is the exact
    mirror (reads ``(2j, 2j+1)``, writes ``(j, j+n/2)``) so that
    ``inverse(forward(a)) == a`` without any reordering pass — matching the
    hardware, where NTT and INTT units share the ping-pong RAM geometry.
    """

    def __init__(self, n: int, q: int) -> None:
        self.n = n
        self.q = q
        self.schedule = constant_geometry_schedule(n, q)

    def forward(self, a: np.ndarray) -> np.ndarray:
        """Constant-geometry forward NTT (Alg. 4); CG-permuted output."""
        n, q = self.n, self.q
        a = np.asarray(a, dtype=np.uint64)
        if a.shape[-1] != n:
            raise ValueError(f"last axis must have length {n}")
        shape = a.shape
        work = a.reshape(-1, n)
        half = n // 2
        for i in range(self.schedule.stages):
            w = self.schedule.twiddles[i][None, :]
            u = work[:, :half]
            v = modmul_vec(work[:, half:], w, q)
            out = np.empty_like(work)
            out[:, 0::2] = modadd_vec(u, v, q)
            out[:, 1::2] = modsub_vec(u, v, q)
            work = out
        return work.reshape(shape)

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`forward` (mirrored constant geometry)."""
        n, q = self.n, self.q
        a = np.asarray(a, dtype=np.uint64)
        if a.shape[-1] != n:
            raise ValueError(f"last axis must have length {n}")
        shape = a.shape
        work = a.reshape(-1, n)
        half = n // 2
        for i in range(self.schedule.stages - 1, -1, -1):
            w_inv = self.schedule.inv_twiddles[i][None, :]
            even = work[:, 0::2]
            odd = work[:, 1::2]
            out = np.empty_like(work)
            out[:, :half] = modadd_vec(even, odd, q)
            out[:, half:] = modmul_vec(modsub_vec(even, odd, q), w_inv, q)
            work = out
        # fold the 1/2-per-stage scaling into one multiply by n^{-1}
        work = modmul_vec(work, np.uint64(self.schedule.n_inv), q)
        return work.reshape(shape)

    def to_gold_order(self, a: np.ndarray) -> np.ndarray:
        """Re-index CG output into the gold model's bit-reversed order."""
        inv = np.empty(self.n, dtype=np.int64)
        inv[self.schedule.output_perm] = np.arange(self.n)
        return np.asarray(a, dtype=np.uint64)[..., inv]

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product via the CG transform pair."""
        ha = self.forward(a)
        hb = self.forward(b)
        return self.inverse(modmul_vec(ha, hb, self.q))


def cg_ntt_cycles(n: int, n_bfu: int) -> int:
    """Clock cycles of one CG NTT with ``n_bfu`` butterfly units.

    Section IV-A1: ``(N/2 * log2 N) / n_bf`` — each stage issues ``N/2``
    butterflies, ``n_bfu`` per cycle, with no inter-stage bubbles thanks to
    the ping-pong RAM banks.  For ``N = 4096, n_bfu = 4`` this is the 6144
    cycles of Table III.
    """
    if n & (n - 1):
        raise ValueError("n must be a power of two")
    log_n = n.bit_length() - 1
    total_butterflies = (n // 2) * log_n
    if total_butterflies % n_bfu:
        raise ValueError(f"n_bfu={n_bfu} does not divide butterfly count")
    return total_butterflies // n_bfu
