"""Extension bench — interconnect topology DSE for the sharded cluster.

The cluster layer can now charge real ciphertext movement (scatter of
hoisted NTT tiles, gather of column-shard LWE partials) to a
discrete-event network model (:mod:`repro.hw.netsim`).  This bench runs
the bench_cluster workload over four fabrics — ideal (infinite
bandwidth), ring, 2D mesh, and fat-tree — on bandwidth-limited links
and records:

* per-topology makespan split into compute vs. network cycles;
* simulated goodput (requests per device-clock second) per fabric;
* the acceptance spread: the ideal fabric must clear > 5% more goodput
  than the bandwidth-limited ring, with zero lost or duplicated flits
  on every fabric and bit-identical first-request results.

Results append to ``BENCH_topology.json`` via ``record_result``.
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.cluster import ClusterConfig, ClusterExecutor

REQUESTS = 12
ROWS, COLS = 96, 256
NODES = 4
BANDWIDTH = 8  # bytes/cycle per link — deliberately starved to expose contention
LATENCY = 4
TOPOLOGIES = ("ideal", "ring", "mesh", "fat-tree")


@pytest.fixture(scope="module")
def workload(bench_scheme, rng):
    matrix = rng.integers(-30, 30, (ROWS, COLS))
    vectors = [rng.integers(-30, 30, COLS) for _ in range(REQUESTS)]
    return matrix, vectors


def _run_topology(bench_scheme, workload, topology, requests):
    matrix, _ = workload
    executor = ClusterExecutor(
        bench_scheme,
        matrix,
        config=ClusterConfig(
            nodes=NODES,
            replication=2,
            max_retries=1,
            fault_rate=0.0,
            seed=17,
            topology=topology,
            link_bandwidth=BANDWIDTH,
            link_latency=LATENCY,
        ),
    )
    results = executor.execute_batch(requests)
    return executor, results


def test_topology_goodput_spread(bench_scheme, workload):
    """Acceptance: ideal fabric > 1.05x ring goodput on starved links,
    zero dropped/duplicated flits, exact results on every fabric."""
    matrix, vectors = workload
    # Encrypt once so every fabric serves the *same* ciphertexts — the
    # scheme RNG advances per encryption, and the point of the sweep is
    # that only the network model differs between runs.
    seeder = ClusterExecutor(
        bench_scheme, matrix, config=ClusterConfig(nodes=NODES, seed=17)
    )
    requests = [seeder.encrypt_vector(v) for v in vectors]
    want = matrix.astype(object) @ vectors[0].astype(object)

    reports = {}
    for topology in TOPOLOGIES:
        executor, results = _run_topology(
            bench_scheme, workload, topology, requests
        )
        report = executor.report()
        assert report.dropped == 0, f"{topology} run dropped shards"
        net = report.network
        assert net["flits_dropped"] == 0, f"{topology} lost flits"
        assert net["duplicates"] == 0, f"{topology} duplicated flits"
        assert net["flits_injected"] == net["flits_delivered"]
        got = results[0].decrypt(bench_scheme)[:ROWS]
        assert np.array_equal(got, want), f"{topology} result mismatch"
        reports[topology] = report

    rows = [
        (
            topology,
            f"{rep.compute_makespan_cycles:,}",
            f"{rep.network_cycles:,}",
            f"{rep.makespan_cycles:,}",
            f"{rep.network['flits_injected']:,}",
            f"{rep.network['blocked_attempts']:,}",
            f"{rep.goodput_sim_rps:,.1f}",
        )
        for topology, rep in reports.items()
    ]
    print_table(
        f"Topology DSE ({REQUESTS} reqs, {ROWS}x{COLS} matrix, "
        f"{NODES} nodes, {BANDWIDTH} B/cycle links)",
        ["fabric", "compute cyc", "network cyc", "makespan cyc",
         "flits", "blocked", "goodput req/s (sim)"],
        rows,
    )

    ratio_ring = reports["ideal"].goodput_sim_rps / reports["ring"].goodput_sim_rps
    ratio_mesh = reports["ideal"].goodput_sim_rps / reports["mesh"].goodput_sim_rps
    record_result(
        "topology",
        {
            "goodput_sim_rps_ideal": reports["ideal"].goodput_sim_rps,
            "goodput_sim_rps_ring": reports["ring"].goodput_sim_rps,
            "goodput_sim_rps_mesh": reports["mesh"].goodput_sim_rps,
            "goodput_sim_rps_fat_tree": reports["fat-tree"].goodput_sim_rps,
            "network_cycles_ring": reports["ring"].network_cycles,
            "network_cycles_mesh": reports["mesh"].network_cycles,
            "network_cycles_fat_tree": reports["fat-tree"].network_cycles,
            "ratio_ideal_vs_ring": ratio_ring,
            "ratio_ideal_vs_mesh": ratio_mesh,
            "flits_dropped_total": sum(
                r.network["flits_dropped"] for r in reports.values()
            ),
        },
        params={
            "requests": REQUESTS,
            "rows": ROWS,
            "cols": COLS,
            "nodes": NODES,
            "replication": 2,
            "bandwidth": BANDWIDTH,
            "latency": LATENCY,
            "topologies": list(TOPOLOGIES),
        },
    )
    assert reports["ideal"].network_cycles == 0
    assert ratio_ring > 1.05, (
        f"ideal fabric only {ratio_ring:.3f}x the ring goodput "
        f"(ring network share "
        f"{reports['ring'].network_cycles / reports['ring'].makespan_cycles:.1%})"
    )
    assert ratio_mesh > 1.0


def test_topology_fat_tree_beats_ring(bench_scheme, workload):
    """The fat-tree's x-arity uplinks must move the same traffic in
    fewer network cycles than the starved ring."""
    matrix, vectors = workload
    seeder = ClusterExecutor(
        bench_scheme, matrix, config=ClusterConfig(nodes=NODES, seed=17)
    )
    requests = [seeder.encrypt_vector(v) for v in vectors[:4]]
    executor, ring_results = _run_topology(
        bench_scheme, workload, "ring", requests
    )
    ring_net = executor.report().network_cycles
    executor, tree_results = _run_topology(
        bench_scheme, workload, "fat-tree", requests
    )
    tree_net = executor.report().network_cycles
    assert tree_net < ring_net, (
        f"fat-tree network cycles {tree_net:,} not below ring {ring_net:,}"
    )
    for a, b in zip(ring_results, tree_results):
        assert np.array_equal(a.decrypt(bench_scheme), b.decrypt(bench_scheme))
