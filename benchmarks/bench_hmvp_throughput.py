"""E6 — Fig. 6: HMVP throughput of CHAM for different matrices.

Reproduces the figure's three claims:

* throughput grows near-linearly with the row count ``m``;
* the column count ``n`` barely matters until a row spans multiple
  ciphertexts (``n > N``, the ``n >= m`` regime of the figure), where
  LWE aggregation degrades it;
* CHAM sustains ~4.5x the GPU's throughput.
"""

import pytest
from conftest import print_table

from repro.core.hmvp import hmvp
from repro.hw.perf import ChamPerfModel, GpuCostModel

M_GRID = [1024, 2048, 4096, 8192, 16384]
N_GRID = [256, 4096, 8192, 16384]


@pytest.fixture(scope="module")
def cham():
    return ChamPerfModel()


def test_figure_6_grid(cham):
    gpu = GpuCostModel()
    rows = []
    grid = {}
    for m in M_GRID:
        for n in N_GRID:
            thr = cham.hmvp_throughput_rows_per_s(m, n)
            grid[(m, n)] = thr
        gpu_thr = m / gpu.hmvp_s(m, 4096, cham.saturated_rows_per_s())
        rows.append(
            (m,)
            + tuple(f"{grid[(m, n)]:,.0f}" for n in N_GRID)
            + (f"{gpu_thr:,.0f}",)
        )
    print_table(
        "Fig. 6: CHAM HMVP throughput (rows/s)",
        ["m \\ n"] + [str(n) for n in N_GRID] + ["GPU (n=4096)"],
        rows,
    )

    # near-linear in m at fixed n (throughput monotonically increasing)
    for n in N_GRID:
        series = [grid[(m, n)] for m in M_GRID]
        assert all(b > a for a, b in zip(series, series[1:])), n

    # n has little impact below the ring degree...
    for m in M_GRID:
        assert grid[(m, 256)] == pytest.approx(grid[(m, 4096)], rel=0.01), m
    # ...and degrades roughly per extra ciphertext tile beyond it
    for m in M_GRID:
        assert grid[(m, 8192)] < 0.65 * grid[(m, 4096)]
        assert grid[(m, 16384)] < 0.65 * grid[(m, 8192)]


def test_gpu_throughput_ratio(cham):
    """Fig. 6 text: CHAM throughput ~4.5x the GPU's at saturation."""
    gpu = GpuCostModel()
    m, n = 16384, 4096
    cham_thr = cham.hmvp_throughput_rows_per_s(m, n)
    gpu_thr = m / gpu.hmvp_s(m, n, cham.saturated_rows_per_s())
    ratio = cham_thr / gpu_thr
    print(f"\nCHAM/GPU sustained throughput ratio: {ratio:.2f}x (paper: 4.5x)")
    assert 2.5 <= ratio <= 4.6


def test_saturation_approaches_engine_limit(cham):
    sat = cham.saturated_rows_per_s()
    big = cham.hmvp_throughput_rows_per_s(65536, 4096)
    assert big > 0.8 * sat


@pytest.mark.benchmark(group="hmvp")
def test_perf_functional_hmvp_8x128(benchmark, bench_scheme, rng):
    """The real Alg. 1 pipeline (toy ring) as a timing kernel."""
    a = rng.integers(-50, 50, (8, 128))
    v = rng.integers(-50, 50, 128)
    ct = bench_scheme.encrypt_vector(v)
    benchmark(hmvp, bench_scheme, a, ct)


@pytest.mark.benchmark(group="hmvp")
def test_perf_throughput_model(benchmark, cham):
    benchmark(cham.hmvp_throughput_rows_per_s, 4096, 4096)
