"""On-card memory system model: DDR traffic and URAM staging buffers.

Section III-C: "we use RAMs to buffer the input and output data of each
thread".  This module models the data movement side of an HMVP job that
the compute-side simulators abstract away:

* :func:`job_traffic` — exact per-job byte counts by stream (plaintext
  rows in, vector ciphertext in, switching keys in, packed result out);
* :class:`StagingBuffer` — a double-buffered URAM staging RAM: capacity
  in polynomials, occupancy over time given producer (DMA) and consumer
  (engine) rates, detecting starve/overflow conditions;
* :func:`sustained_bandwidth` — the DDR bandwidth an engine pulls at
  steady state, checked against the device's roof (this is the number
  that proves whole-HMVP offload is *not* memory-bound, complementing
  the roofline's op/byte view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .arch import ChamConfig, cham_default_config

__all__ = ["JobTraffic", "job_traffic", "StagingBuffer", "sustained_bandwidth"]

_BYTES_PER_COEFF = 8


@dataclass(frozen=True)
class JobTraffic:
    """Per-job DDR byte counts by stream."""

    rows_in: int
    vector_in: int
    keys_in: int
    result_out: int

    @property
    def total(self) -> int:
        return self.rows_in + self.vector_in + self.keys_in + self.result_out

    def by_stream(self) -> Dict[str, int]:
        return {
            "plaintext rows": self.rows_in,
            "vector ct": self.vector_in,
            "switching keys": self.keys_in,
            "packed result": self.result_out,
        }


def job_traffic(
    rows: int, col_tiles: int = 1, ring_n: int = 4096, limbs: int = 2
) -> JobTraffic:
    """Exact traffic of one HMVP job (everything else stays on-chip)."""
    limbs_aug = limbs + 1
    poly = ring_n * _BYTES_PER_COEFF
    rows_in = rows * col_tiles * limbs_aug * poly  # augmented pt rows
    vector_in = col_tiles * 2 * limbs_aug * poly  # augmented vector ct
    # pack-tree Galois keys: log2(rows) levels, dnum*2 components each,
    # augmented limbs — loaded once per job and resident thereafter
    levels = max(rows - 1, 0).bit_length()
    keys_in = levels * limbs * 2 * limbs_aug * poly
    result_out = 2 * limbs * poly  # packed normal-basis ciphertext
    return JobTraffic(rows_in, vector_in, keys_in, result_out)


@dataclass
class StagingBuffer:
    """Double-buffered URAM staging RAM between DMA and an engine.

    Tracks occupancy in polynomials: the DMA fills at ``fill_rate``
    polys/cycle, the engine drains ``drain_per_row`` polys every
    ``row_interval`` cycles.  ``simulate`` reports whether the engine
    ever starves (buffer empty at a row boundary) or the DMA ever blocks
    (buffer full), and the peak occupancy — the URAM sizing input.
    """

    capacity_polys: int
    fill_rate: float  # polynomials per cycle from DMA
    drain_per_row: int  # polynomials consumed per row
    row_interval: int  # cycles between row starts

    def simulate(self, rows: int) -> Dict[str, float]:
        occupancy = 0.0
        peak = 0.0
        starves = 0
        blocked_cycles = 0.0
        produced = 0.0
        total_polys = rows * self.drain_per_row
        time = 0
        for _row in range(rows):
            # DMA fills during the interval, clipped by capacity
            fill = self.fill_rate * self.row_interval
            room = self.capacity_polys - occupancy
            if fill > room:
                blocked_cycles += (fill - room) / self.fill_rate
                fill = room
            fill = min(fill, total_polys - produced)
            produced += fill
            occupancy += fill
            peak = max(peak, occupancy)
            # engine drains one row's worth, if present
            if occupancy + 1e-9 < self.drain_per_row:
                starves += 1
            else:
                occupancy -= self.drain_per_row
            time += self.row_interval
        return {
            "peak_polys": peak,
            "starves": starves,
            "dma_blocked_cycles": blocked_cycles,
            "cycles": time,
        }


def sustained_bandwidth(
    cfg: ChamConfig = None, ring_n: int = 4096, limbs: int = 2
) -> Dict[str, float]:
    """Steady-state DDR pull of the full accelerator vs. its roof.

    Each engine consumes one augmented plaintext row (``limbs+1`` polys)
    per ``dot_product_interval``; everything else is amortized.
    """
    cfg = cfg or cham_default_config()
    engine = cfg.engine
    poly = ring_n * _BYTES_PER_COEFF
    bytes_per_row = (limbs + 1) * poly
    rows_per_sec = cfg.clock_hz / engine.dot_product_interval
    per_engine = bytes_per_row * rows_per_sec
    total = per_engine * cfg.engines
    roof = 77e9  # the U200/VU9P DDR roof used by the roofline model
    return {
        "per_engine_gbps": per_engine / 1e9,
        "total_gbps": total / 1e9,
        "roof_gbps": roof / 1e9,
        "fraction_of_roof": total / roof,
    }
