"""Tests for batched (multi-vector) HMVP."""

import numpy as np
import pytest

from repro.core.batch import BatchedHmvp
from repro.core.hmvp import hmvp


@pytest.fixture(scope="module")
def matrix(rng_module):
    return rng_module.integers(-40, 40, (6, 128))


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(0xBA7C)


def test_batched_matches_single(scheme128, matrix, rng_module):
    batched = BatchedHmvp(scheme128, matrix)
    v = rng_module.integers(-40, 40, 128)
    ct = scheme128.encrypt_vector(v)
    got = batched.multiply_one(ct).decrypt(scheme128)
    want = matrix.astype(object) @ v.astype(object)
    assert np.array_equal(got, want)
    # and agrees with the uncached path
    ref = hmvp(scheme128, matrix, scheme128.encrypt_vector(v)).decrypt(scheme128)
    assert np.array_equal(got, ref)


def test_batch_of_vectors(scheme128, matrix, rng_module):
    batched = BatchedHmvp(scheme128, matrix)
    vs = [rng_module.integers(-40, 40, 128) for _ in range(3)]
    cts = [scheme128.encrypt_vector(v) for v in vs]
    results = batched.multiply_batch(cts)
    for res, v in zip(results, vs):
        assert np.array_equal(
            res.decrypt(scheme128), matrix.astype(object) @ v.astype(object)
        )


def test_cached_ntt_savings(scheme128, matrix, rng_module):
    """The batched path skips the per-vector row transforms."""
    batched = BatchedHmvp(scheme128, matrix)
    v = rng_module.integers(-10, 10, 128)
    ct = scheme128.encrypt_vector(v)
    cached_ops = batched.multiply_one(ct).ops
    uncached_ops = hmvp(scheme128, matrix, scheme128.encrypt_vector(v)).ops
    assert cached_ops.ntts < uncached_ops.ntts
    # exactly the m*limbs_aug row transforms are saved per vector
    m = matrix.shape[0]
    assert uncached_ops.ntts - cached_ops.ntts == m * 3


def test_amortized_op_count(scheme128, matrix):
    batched = BatchedHmvp(scheme128, matrix)
    one = batched.amortized_op_count(1)
    ten = batched.amortized_op_count(10)
    # encode cost appears once; per-vector cost scales linearly
    per_vec = (ten.ntts - one.ntts) / 9
    assert per_vec < one.ntts  # encode ntts amortized away
    assert ten.dot_products == 10 * matrix.shape[0]


def test_rejects_bad_inputs(scheme128, rng_module):
    with pytest.raises(ValueError):
        BatchedHmvp(scheme128, np.zeros(128))
    with pytest.raises(ValueError):
        BatchedHmvp(scheme128, np.zeros((129, 10)))
    batched = BatchedHmvp(scheme128, rng_module.integers(-5, 5, (2, 128)))
    ct = scheme128.encrypt_vector([1], augmented=False)
    with pytest.raises(ValueError, match="augmented"):
        batched.multiply_one(ct)


def test_shape_property(scheme128, matrix):
    assert BatchedHmvp(scheme128, matrix).shape == (6, 128)


# -- encrypted matrix-matrix products ------------------------------------------


def test_encrypted_matmul_exact(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    a = rng_module.integers(-20, 20, (5, 128))
    b = rng_module.integers(-20, 20, (128, 3))
    mm = EncryptedMatmul(scheme128, a)
    got = mm(b)
    want = a.astype(object) @ b.astype(object)
    assert np.array_equal(got, want)
    assert got.shape == (5, 3)


def test_encrypted_matmul_dimension_check(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    mm = EncryptedMatmul(scheme128, rng_module.integers(-5, 5, (4, 128)))
    with pytest.raises(ValueError, match="inner dimensions"):
        mm.encrypt_matrix(rng_module.integers(-5, 5, (64, 2)))
    with pytest.raises(ValueError, match="2-D"):
        mm.encrypt_matrix(rng_module.integers(-5, 5, 128))


def test_encrypted_matmul_columns_decrypt_independently(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    a = rng_module.integers(-10, 10, (6, 128))
    b = rng_module.integers(-10, 10, (128, 2))
    mm = EncryptedMatmul(scheme128, a)
    results = mm.multiply(mm.encrypt_matrix(b))
    col0 = results[0].decrypt(scheme128)
    assert np.array_equal(col0, a.astype(object) @ b[:, 0].astype(object))


def test_encrypted_matmul_op_count_scales(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    mm = EncryptedMatmul(scheme128, rng_module.integers(-5, 5, (4, 128)))
    one = mm.op_count(1)
    four = mm.op_count(4)
    assert four.dot_products == 4 * one.dot_products
