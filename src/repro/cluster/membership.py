"""Elastic cluster membership: nodes join, leave, and die mid-flight.

The PR-5 cluster layer assumed a fixed node set: one dead or added node
invalidated the whole placement and would have forced a full matrix
re-encode.  This module makes membership a first-class, *deterministic*
input — Varuna-style elasticity (preemption signals, morphing a running
job onto a changed node set) with the hard guarantee that results stay
bit-identical per RNS limb across any scale schedule:

* :class:`MembershipEvent` / :class:`MembershipSchedule` — seeded
  join/leave/kill events indexed by **request sequence number**, so a
  chaos run is a pure function of ``(data seed, schedule seed)`` and can
  be replayed byte-for-byte;
* :class:`ClusterController` — reacts between requests.  The key design
  decision is that the :class:`~repro.cluster.partition.PartitionPlan`
  shard grid **never changes**: membership events only move *where*
  shards run, so the merge algebra (exact modular addition + row-order
  concat + central pack) is untouched and bit-identity is structural,
  not incidental.  Re-partitioning is incremental — only the affected
  shards' :class:`~repro.core.batch.EncodedMatrixCache` entries migrate
  (a cache-to-cache copy of the already-NTT'd rows, never a re-encode;
  the ``migrated_entries`` / ``reencodes_avoided`` counters prove it),
  a surviving replica is promoted when a primary dies, and graceful
  departures drain their shards to survivors before leaving.

An encode is re-run only in the one case where it is information-
theoretically unavoidable: every node holding a shard's encoding died in
the same instant (the ``reencodes`` counter; the property suite pins it
to zero whenever any surviving node still holds the entry).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..core.batch import BatchedHmvp, EncodedMatrixCache
from .partition import Shard
from .placement import ClusterNode, make_cluster_node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .autoscaler import Autoscaler
    from .executor import ClusterExecutor

__all__ = [
    "MembershipError",
    "MembershipEvent",
    "MembershipSchedule",
    "ClusterController",
]

_KINDS = ("join", "leave", "kill")


class MembershipError(ValueError):
    """A membership event is invalid for the current node set."""


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change, fired *before* request number ``seq``.

    ``node_id`` is required for ``leave`` / ``kill``; for ``join`` it may
    be ``None`` (the controller allocates the next fresh id) or explicit
    (a departed node rejoining — with a cold cache, since its old cache
    died with its process).
    """

    seq: int
    kind: str
    node_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MembershipError(
                f"unknown membership event kind {self.kind!r}"
            )
        if self.seq < 0:
            raise MembershipError(f"event seq {self.seq} must be >= 0")
        if self.kind in ("leave", "kill") and self.node_id is None:
            raise MembershipError(f"{self.kind} event needs a node_id")

    def to_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "kind": self.kind, "node_id": self.node_id}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MembershipEvent":
        return cls(
            seq=int(payload["seq"]),  # type: ignore[arg-type]
            kind=str(payload["kind"]),
            node_id=(
                None if payload.get("node_id") is None
                else int(payload["node_id"])  # type: ignore[arg-type]
            ),
        )


class MembershipSchedule:
    """An ordered, replayable list of membership events.

    Events are stably sorted by ``seq`` (same-seq events keep their
    authored order, so "kill 3 then kill 2 at request 4" means exactly
    that).  The schedule is data: it round-trips through dicts, a compact
    CLI spec string, and JSON fixture files unchanged.
    """

    def __init__(self, events: Sequence[MembershipEvent] = ()) -> None:
        self.events: Tuple[MembershipEvent, ...] = tuple(
            sorted(events, key=lambda e: e.seq)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MembershipEvent]:
        return iter(self.events)

    def to_dict(self) -> Dict[str, object]:
        return {"events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MembershipSchedule":
        return cls(
            [MembershipEvent.from_dict(e) for e in payload["events"]]  # type: ignore[union-attr]
        )

    def to_spec(self) -> str:
        """Compact CLI form: ``seq:kind[:node]`` joined by commas."""
        parts = []
        for e in self.events:
            part = f"{e.seq}:{e.kind}"
            if e.node_id is not None:
                part += f":{e.node_id}"
            parts.append(part)
        return ",".join(parts)

    @classmethod
    def parse(cls, spec: str) -> "MembershipSchedule":
        """Parse the CLI form, e.g. ``"4:kill:3,4:kill:2,8:join,8:join"``."""
        events = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) not in (2, 3):
                raise MembershipError(
                    f"bad schedule element {part!r} "
                    "(want seq:kind or seq:kind:node)"
                )
            try:
                seq = int(pieces[0])
                node = int(pieces[2]) if len(pieces) == 3 else None
            except ValueError as exc:
                raise MembershipError(
                    f"bad schedule element {part!r}: {exc}"
                ) from exc
            events.append(MembershipEvent(seq=seq, kind=pieces[1], node_id=node))
        return cls(events)

    @classmethod
    def random(
        cls,
        seed: int,
        requests: int,
        initial_nodes: int,
        max_events: int = 6,
        max_nodes: int = 8,
    ) -> "MembershipSchedule":
        """A seeded, *valid* random schedule for chaos runs.

        Validity is simulated during generation: leaves/kills only target
        nodes active at fire time, the pool never drops below one node,
        and joins stop at ``max_nodes``.  Joins may reuse a departed id
        (a rejoin with a cold cache) or allocate a fresh one.
        """
        rng = Random(seed)
        active = set(range(initial_nodes))
        departed: List[int] = []
        next_id = initial_nodes
        events: List[MembershipEvent] = []
        seq = 0
        for _ in range(rng.randint(1, max(max_events, 1))):
            seq = rng.randint(seq, max(requests - 1, 0))
            kinds = []
            if len(active) < max_nodes:
                kinds.append("join")
            if len(active) > 1:
                kinds.extend(["leave", "kill"])
            if not kinds:
                break
            kind = rng.choice(kinds)
            if kind == "join":
                if departed and rng.random() < 0.3:
                    node = departed.pop(rng.randrange(len(departed)))
                else:
                    node, next_id = next_id, next_id + 1
                active.add(node)
            else:
                node = rng.choice(sorted(active))
                active.remove(node)
                departed.append(node)
            events.append(MembershipEvent(seq=seq, kind=kind, node_id=node))
        return cls(events)


class ClusterController:
    """Reacts to membership events against a live :class:`ClusterExecutor`.

    The controller owns no data plane of its own: it mutates the
    executor's node pool and :class:`~repro.cluster.placement.ShardPlacement`
    in place, re-validating the placement against the (fixed) partition
    plan after every event batch.  All policies are deterministic — every
    tie breaks by node id or shard id — so a chaos run replays exactly.
    """

    def __init__(
        self,
        executor: "ClusterExecutor",
        schedule: Optional[MembershipSchedule] = None,
        autoscaler: Optional["Autoscaler"] = None,
    ) -> None:
        self.executor = executor
        self.schedule = schedule or MembershipSchedule()
        self.autoscaler = autoscaler
        self._cursor = 0
        self._next_node_id = max(executor.nodes, default=-1) + 1
        for event in self.schedule:
            if event.node_id is not None:
                self._next_node_id = max(self._next_node_id, event.node_id + 1)
        self.applied_events: List[MembershipEvent] = []
        # lifetime counters (surfaced through ClusterReport.membership)
        self.joins = 0
        self.leaves = 0
        self.kills = 0
        self.replica_promotions = 0
        self.drained_shards = 0
        self.migrated_entries = 0
        self.reencodes = 0
        self.reencodes_avoided = 0
        self.autoscale_actions = 0

    # -- event pump --------------------------------------------------------

    def advance(self, seq: int) -> List[MembershipEvent]:
        """Apply every scheduled event due at or before request ``seq``."""
        applied: List[MembershipEvent] = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].seq <= seq:
            event = events[self._cursor]
            self._cursor += 1
            self.apply(event)
            applied.append(event)
        return applied

    def apply(self, event: MembershipEvent) -> None:
        """Apply one event and re-validate placement against the plan."""
        with obs.span(
            "cluster.membership.event",
            kind=event.kind,
            node=event.node_id,
            seq=event.seq,
        ):
            if event.kind == "join":
                self._join(event.node_id)
            elif event.kind == "leave":
                self._leave(event.node_id)  # type: ignore[arg-type]
            else:
                self._kill(event.node_id)  # type: ignore[arg-type]
        self.applied_events.append(event)
        obs.inc(f"cluster.membership.{event.kind}")
        obs.set_gauge("cluster.nodes", len(self.executor.nodes))
        self.executor.placement.validate_against(self.executor.plan)

    def maybe_autoscale(self, seq: int, queue_depth: int) -> Optional[str]:
        """Feed the autoscaler one observation; apply its decision."""
        if self.autoscaler is None:
            return None
        action = self.autoscaler.observe(
            queue_depth=queue_depth, nodes=len(self.executor.nodes)
        )
        if action == "up":
            self.apply(MembershipEvent(seq=seq, kind="join"))
        elif action == "down":
            # drain the least-loaded node; ties retire the newest id first
            loads = self._primary_loads()
            victim = min(loads, key=lambda n: (loads[n], -n))
            self.apply(
                MembershipEvent(seq=seq, kind="leave", node_id=victim)
            )
        if action is not None:
            self.autoscale_actions += 1
            obs.inc(f"cluster.autoscale.{action}")
        return action

    # -- shared helpers ----------------------------------------------------

    def _shard(self, shard_id: int) -> Shard:
        return self.executor.plan.shards[shard_id]

    def _primary_loads(self) -> Dict[int, int]:
        costs = self.executor.shard_costs
        placement = self.executor.placement
        return {
            nid: sum(costs[sid] for sid in placement.primary_shards(nid))
            for nid in sorted(self.executor.nodes)
        }

    def _pick_target(self, exclude: set) -> Optional[int]:
        """Least-loaded active node outside ``exclude`` (ties: lowest id)."""
        loads = self._primary_loads()
        eligible = [n for n in loads if n not in exclude]
        if not eligible:
            return None
        return min(eligible, key=lambda n: (loads[n], n))

    def _stage_engine(self, shard: Shard, target: ClusterNode) -> None:
        """Make ``shard`` resident on ``target`` — by migration, not encode.

        The encoded entry is copied cache-to-cache from *any* surviving
        node that still holds it (current hosts first, then demoted
        standbys whose caches kept the entry).  Only when no live cache
        holds it — every holder died at once — does the engine build fall
        through to a real re-encode, counted in ``reencodes``.
        """
        executor = self.executor
        sub = shard.submatrix(executor.matrix)
        key = EncodedMatrixCache.key_for(executor.scheme, sub)
        if target.cache.peek(key) is not None:
            self.reencodes_avoided += 1
            obs.inc("cluster.migration.already_resident")
        else:
            hosted = executor.placement.nodes_for(shard.shard_id)
            search = [n for n in hosted if n in executor.nodes] + [
                n for n in sorted(executor.nodes) if n not in hosted
            ]
            source = None
            source_nid = None
            for nid in search:
                node = executor.nodes[nid]
                if node is not target:
                    entry = node.cache.peek(key)
                    if entry is not None:
                        source = entry
                        source_nid = nid
                        break
            if source is not None:
                target.cache.install(key, source)
                self.migrated_entries += 1
                self.reencodes_avoided += 1
                obs.inc("cluster.migration.entries")
                # replica-sync traffic: the encoded entry moves
                # cache-to-cache over the interconnect (no-op when no
                # topology is attached), sized from its actual tiles
                executor._net_transfer(
                    source_nid,
                    target.node_id,
                    sum(int(t.nbytes) for t in source.tiles.values()),
                    tag=f"sync{shard.shard_id}",
                )
            else:
                self.reencodes += 1
                obs.inc("cluster.migration.reencodes")
        with obs.span(
            "cluster.migration",
            pid=target.node_id + 1,
            shard=shard.shard_id,
            node=target.node_id,
        ):
            target.engines[shard.shard_id] = BatchedHmvp(
                executor.scheme, sub, cache=target.cache
            )

    def _retire(self, node: ClusterNode) -> None:
        """Bank a departing node's cycle ledger and drop it from the pool."""
        executor = self.executor
        executor.departed_busy_cycles[node.node_id] = (
            executor.departed_busy_cycles.get(node.node_id, 0)
            + node.busy_cycles
        )
        del executor.nodes[node.node_id]

    # -- the three event kinds ---------------------------------------------

    def _join(self, node_id: Optional[int]) -> None:
        """Admit a node and incrementally shift primaries onto it.

        Only shards whose move *strictly* reduces the primary-load
        imbalance migrate — the rest of the placement is untouched.  The
        new primary's encoding is copied from the demoted old primary
        (which stays on as a replica); when the promotion pushes a
        shard's host list over the replication target, the tail replica
        is demoted (engine dropped, cache entry kept as a warm standby).
        """
        executor = self.executor
        if node_id is None:
            node_id = self._next_node_id
        if node_id in executor.nodes:
            raise MembershipError(f"node {node_id} is already active")
        self._next_node_id = max(self._next_node_id, node_id + 1)
        config = executor.config
        node = make_cluster_node(
            node_id,
            executor.plan,
            cham=executor.cham,
            seed=config.seed,
            fault_rate=config.fault_rate,
            register_flip_rate=config.register_flip_rate,
            resets_to_recover=config.resets_to_recover,
        )
        executor.nodes[node_id] = node
        executor.placement.add_node(node_id)
        # rewire the interconnect first so the staging migrations below
        # can charge their replica-sync traffic to the new endpoint
        executor._net_set_nodes()
        if obs.TRACER.enabled:
            obs.TRACER.name_process(node_id + 1, f"node{node_id}")
        costs = self.executor.shard_costs
        placement = executor.placement
        loads = self._primary_loads()
        while True:
            donors = [n for n in loads if n != node_id]
            if not donors:
                break
            donor = max(donors, key=lambda n: (loads[n], -n))
            pick = None
            for sid in sorted(
                placement.primary_shards(donor),
                key=lambda s: (-costs[s], s),
            ):
                if loads[donor] - loads[node_id] > costs[sid]:
                    pick = sid
                    break
            if pick is None:
                break
            self._stage_engine(self._shard(pick), node)
            hosted = placement.nodes_for(pick)
            hosted.insert(0, node_id)
            while len(hosted) > placement.replication:
                demoted = hosted.pop()
                standby = executor.nodes.get(demoted)
                if standby is not None:
                    standby.engines.pop(pick, None)
            loads[node_id] += costs[pick]
            loads[donor] -= costs[pick]
        # heal under-replication: a shrunken pool may have left shards
        # with a single live copy — the fresh node restores the replica
        # count by migration, so a later death of the old sole holder can
        # never force a re-encode.
        for shard in executor.plan.shards:
            hosted = placement.nodes_for(shard.shard_id)
            if node_id not in hosted and len(hosted) < placement.replication:
                self._stage_engine(shard, node)
                hosted.append(node_id)
                obs.inc("cluster.membership.healed")
        self.joins += 1

    def _leave(self, node_id: int) -> None:
        """Graceful departure: drain every hosted shard, then retire.

        The leaving node is still alive, so every migration sources from
        a live cache (usually its own) — a drain never re-encodes.
        Primaries hand off to their first surviving replica when one
        exists, else migrate directly to the least-loaded survivor.
        """
        executor = self.executor
        node = executor.nodes.get(node_id)
        if node is None:
            raise MembershipError(f"node {node_id} is not active")
        if len(executor.nodes) == 1:
            raise MembershipError("cannot drain the last node")
        placement = executor.placement
        for sid in placement.node_shards(node_id):
            hosted = placement.nodes_for(sid)
            was_primary = hosted[0] == node_id
            hosted.remove(node_id)
            if was_primary and hosted:
                self.drained_shards += 1
                obs.inc("cluster.membership.drained")
            replacement = self._pick_target(
                exclude=set(hosted) | {node_id}
            )
            if replacement is not None and (
                not hosted or len(hosted) < placement.replication
            ):
                self._stage_engine(
                    self._shard(sid), executor.nodes[replacement]
                )
                hosted.append(replacement)
            node.engines.pop(sid, None)
        placement.remove_node(node_id)
        self._retire(node)
        executor._net_set_nodes()
        self.leaves += 1

    def _kill(self, node_id: int) -> None:
        """Abrupt death: the node's cache is lost with it.

        Surviving replicas are promoted to primary in place; replication
        is restored by copying the encoding from any surviving holder.
        Only a shard whose every host died in the same event can force a
        re-encode — and even then a demoted standby's warm cache is
        checked first.
        """
        executor = self.executor
        node = executor.nodes.get(node_id)
        if node is None:
            raise MembershipError(f"node {node_id} is not active")
        if len(executor.nodes) == 1:
            raise MembershipError("cannot kill the last node")
        self._retire(node)  # dead first: its cache must not be a source
        # drop the dead endpoint before the re-homing migrations charge
        # their replica-sync traffic among the survivors
        executor._net_set_nodes()
        placement = executor.placement
        for sid in placement.node_shards(node_id):
            hosted = placement.nodes_for(sid)
            was_primary = hosted[0] == node_id
            hosted.remove(node_id)
            if was_primary and hosted:
                self.replica_promotions += 1
                obs.inc("cluster.membership.promotions")
            replacement = self._pick_target(exclude=set(hosted))
            if replacement is not None and (
                not hosted or len(hosted) < placement.replication
            ):
                self._stage_engine(
                    self._shard(sid), executor.nodes[replacement]
                )
                hosted.append(replacement)
        placement.remove_node(node_id)
        self.kills += 1

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "joins": self.joins,
            "leaves": self.leaves,
            "kills": self.kills,
            "replica_promotions": self.replica_promotions,
            "drained_shards": self.drained_shards,
            "migrated_entries": self.migrated_entries,
            "reencodes": self.reencodes,
            "reencodes_avoided": self.reencodes_avoided,
            "autoscale_actions": self.autoscale_actions,
            "applied_events": [e.to_dict() for e in self.applied_events],
        }
