"""Homomorphic Galois automorphisms (the AUTOMORPH stage of Alg. 2).

Applying ``X -> X^g`` to both components of a ciphertext maps an
encryption of ``m(X)`` under ``s(X)`` to an encryption of ``m(X^g)``
under ``s(X^g)``; a key-switch with the Galois key for ``g`` then
restores the native secret.  ``g`` must be odd (a unit mod ``2N``).
"""

from __future__ import annotations

from .keys import GaloisKeyset, KeySwitchKey
from .keyswitch import apply_keyswitch
from .rlwe import RlweCiphertext

__all__ = ["apply_automorphism", "apply_automorphism_with_key"]


def apply_automorphism_with_key(
    ct: RlweCiphertext, g: int, key: KeySwitchKey
) -> RlweCiphertext:
    """``Enc_s(m(X)) -> Enc_s(m(X^g))`` using an explicit Galois key."""
    rotated = ct.automorph_raw(g)
    return apply_keyswitch(rotated, key)


def apply_automorphism(
    ct: RlweCiphertext, g: int, keyset: GaloisKeyset
) -> RlweCiphertext:
    """``Enc_s(m(X)) -> Enc_s(m(X^g))`` looking the key up in a keyset."""
    return apply_automorphism_with_key(ct, g, keyset[g])
