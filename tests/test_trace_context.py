"""Distributed-trace continuity: one request == one connected trace tree.

The tentpole claim of the tracing layer is that a request keeps a single
``trace_id`` across every hop — batch queue, executor thread pool, the
cluster scatter/failover/gather path, and each node's device runtime —
so the Chrome export shows one connected tree per request with per-node
``pid`` lanes and flow links across reroutes.  These tests drive real
serving and cluster runs (with scripted node hangs) and assert that
connectivity on the recorded spans, not on mocks.
"""

import threading

import numpy as np
import pytest

from repro import obs
from repro.cluster import ClusterConfig, ClusterExecutor
from repro.hw.runtime import FaultInjector


@pytest.fixture()
def traced():
    """Tracing on, spans cleared; global state restored by conftest."""
    obs.TRACER.reset()
    obs.enable_tracing()
    yield obs.TRACER
    obs.disable_tracing()


def _spans_by_trace(spans):
    by_trace = {}
    for s in spans:
        if s.trace_id:
            by_trace.setdefault(s.trace_id, []).append(s)
    return by_trace


def _assert_connected(trace_spans):
    """Every parented span's parent exists in the same trace."""
    ids = {s.span_id for s in trace_spans}
    roots = [s for s in trace_spans if not s.parent_id]
    assert roots, "trace has no root span"
    for s in trace_spans:
        if s.parent_id:
            assert s.parent_id in ids, (
                f"span {s.name} parent {s.parent_id} missing from its trace"
            )


# -- context plumbing ---------------------------------------------------------


def test_context_propagates_to_nested_spans(traced):
    ctx = traced.new_trace()
    with obs.use_context(ctx):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
    outer, inner = {s.name: s for s in traced.spans}["outer"], \
        {s.name: s for s in traced.spans}["inner"]
    assert outer.trace_id == inner.trace_id == ctx.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == ""  # the minted context has no span yet


def test_run_with_context_bridges_thread_hops(traced):
    """Worker threads do not inherit contextvars; the explicit bridge
    must carry the request context across the pool hop."""
    ctx = traced.new_trace()
    done = threading.Event()

    def work():
        with obs.span("hopped"):
            done.set()

    t = threading.Thread(target=obs.run_with_context, args=(ctx, work))
    t.start()
    t.join()
    assert done.is_set()
    (spn,) = [s for s in traced.spans if s.name == "hopped"]
    assert spn.trace_id == ctx.trace_id


def test_current_context_restored_after_span(traced):
    assert obs.current_context() is None
    with obs.span("a"):
        inside = obs.current_context()
        assert inside is not None and inside.trace_id == ""
    assert obs.current_context() is None


# -- batch queue --------------------------------------------------------------


def test_make_jobs_tags_each_request_with_its_trace(traced, scheme128, rng):
    """Each request's jobs carry that request's frozen context, so the
    device-side attempt spans land in the right tree after the hop."""
    from repro.core.batch import BatchedHmvp, EncodedMatrixCache

    matrix = rng.integers(-8, 8, (4, 128))
    engine = BatchedHmvp(scheme128, matrix, cache=EncodedMatrixCache())
    ctxs = [traced.new_trace() for _ in range(3)]
    jobs = engine.make_jobs([0, 1, 2], ctxs=ctxs)
    assert len(jobs) == 3
    assert [j.ctx.trace_id for j in jobs] == [c.trace_id for c in ctxs]


def test_runtime_attempt_spans_join_the_job_trace(traced):
    """A ctx-tagged job's attempt spans carry the trace id and the
    runtime's pid lane — including the failed (hung) attempt."""
    from repro.hw.runtime import FpgaRuntime

    faults = FaultInjector(hang_script=[True, False])
    rt = FpgaRuntime(faults=faults, max_job_retries=2, lane=5)
    ctx = traced.new_trace()
    job_id = rt.submit(4, ctx=ctx)
    rt.poll(job_id)
    attempts = [s for s in traced.spans if s.name == "hw.job.attempt"]
    assert len(attempts) >= 2  # the hang and the successful retry
    assert {s.trace_id for s in attempts} == {ctx.trace_id}
    assert {s.pid for s in attempts} == {5}
    outcomes = [s.args.get("outcome") for s in attempts]
    assert "done" in outcomes


# -- serving layer ------------------------------------------------------------


def test_serve_exports_one_connected_tree_per_request(traced, scheme128, rng):
    from repro.serve import ServeConfig, serve_requests

    matrix = rng.integers(-8, 8, (4, 128))
    cts = [
        scheme128.encrypt_vector(rng.integers(-8, 8, 128)) for _ in range(6)
    ]
    config = ServeConfig(engines=2, max_batch=2, queue_capacity=8, seed=5)
    report = serve_requests(scheme128, matrix, cts, config)
    assert report.completed == report.submitted == 6

    by_trace = _spans_by_trace(traced.spans)
    request_traces = {
        s.trace_id for s in traced.spans if s.name == "serve.request"
    }
    assert len(request_traces) == 6  # one trace per submitted request
    for trace_id in request_traces:
        tree = by_trace[trace_id]
        _assert_connected(tree)
        # the request's work crossed into an engine lane (pid > 0)
        assert any(s.pid > 0 for s in tree), (
            f"trace {trace_id} never reached an engine lane"
        )
    # coordinator and engine lanes are named for the Chrome export
    events = traced.chrome_events()
    lanes = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert lanes.get(0) == "serve.coordinator"
    assert "engine0" in lanes.values() and "engine1" in lanes.values()


# -- cluster layer (the acceptance scenario) ----------------------------------


@pytest.fixture()
def hang_cluster(scheme128):
    """3-node cluster where node 0 hangs on its first two offloads."""
    rng = np.random.default_rng(0xC107)
    matrix = rng.integers(-100, 100, (24, 256))
    injectors = [
        FaultInjector(hang_script=[True, True], seed=11),
        FaultInjector(seed=12),
        FaultInjector(seed=13),
    ]
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=3),
        fault_injectors=injectors,
    )
    return executor, matrix, rng


def test_cluster_hang_run_exports_connected_traces(traced, hang_cluster):
    """Acceptance: a cluster run with scripted node hangs exports one
    connected trace per request, every request's trace reaches at least
    one node lane, and the failover reroute is linked to the original
    attempt."""
    executor, matrix, rng = hang_cluster
    for _ in range(2):
        vector = rng.integers(-100, 100, matrix.shape[1])
        executor.execute(executor.encrypt_vector(vector))
    assert executor.report().shard_retries >= 1  # the script fired

    by_trace = _spans_by_trace(traced.spans)
    request_traces = {
        s.trace_id for s in traced.spans if s.name == "cluster.request"
    }
    assert len(request_traces) == 2
    for trace_id in request_traces:
        tree = by_trace[trace_id]
        _assert_connected(tree)
        assert any(s.pid > 0 for s in tree), (
            f"trace {trace_id} has no node-lane span"
        )
        # kernel spans run *inside* the node lane via the pinned context
        assert any(
            s.pid > 0 and s.name == "cluster.shard.compute" for s in tree
        )

    # the rerouted attempt links back to the original (hung) attempt
    attempts = [s for s in traced.spans if s.name == "cluster.shard.attempt"]
    hung = [s for s in attempts if s.args.get("outcome") == "hang"]
    rerouted = [s for s in attempts if s.links]
    assert hung and rerouted
    hung_ids = {s.span_id for s in hung}
    linked = [s for s in rerouted if set(s.links) & hung_ids]
    assert linked, "no reroute links back to a hung attempt"
    for s in linked:
        original = next(h for h in hung if h.span_id in s.links)
        assert s.trace_id == original.trace_id  # same request, same trace
        assert s.pid != original.pid  # and a different node lane


def test_cluster_chrome_export_has_lanes_and_flows(traced, hang_cluster):
    executor, matrix, rng = hang_cluster
    vector = rng.integers(-100, 100, matrix.shape[1])
    executor.execute(executor.encrypt_vector(vector))
    events = traced.chrome_events()

    lanes = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert lanes.get(0) == "cluster.coordinator"
    assert {"node0", "node1", "node2"} <= set(lanes.values())
    # work actually rendered into node lanes, not just the coordinator
    x_pids = {e["pid"] for e in events if e["ph"] == "X"}
    assert x_pids & {1, 2, 3}

    flows = [e for e in events if e["ph"] in ("s", "f")]
    assert flows, "no flow events in the export"
    starts = {e["id"] for e in flows if e["ph"] == "s"}
    finishes = {e["id"] for e in flows if e["ph"] == "f"}
    assert starts == finishes  # every flow arrow has both ends
    for e in flows:
        if e["ph"] == "f":
            assert e.get("bp") == "e"  # bind to the enclosing slice


def test_degrade_span_links_to_original_attempt(traced, scheme128):
    """A full CPU degrade still lands in the request's trace and links
    back to the first device attempt."""
    rng = np.random.default_rng(0xC108)
    matrix = rng.integers(-100, 100, (8, 128))
    injectors = [
        FaultInjector(hang_prob=1.0, resets_to_recover=10_000, seed=s)
        for s in (21, 22)
    ]
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=2, replication=2, max_retries=1, seed=4),
        fault_injectors=injectors,
    )
    executor.execute(executor.encrypt_vector(rng.integers(-100, 100, 128)))
    assert executor.report().degraded_shards == len(executor.plan.shards)

    degrades = [s for s in traced.spans if s.name == "cluster.shard.degrade"]
    attempts = {
        s.span_id: s
        for s in traced.spans
        if s.name == "cluster.shard.attempt"
    }
    assert degrades
    for s in degrades:
        assert s.trace_id  # in the request's trace, not orphaned
        assert s.links and all(link in attempts for link in s.links)
