"""Abstract HE-state interpreter over function ASTs (REPRO201..206).

PR 4's pattern rules (REPRO101..108) check single expressions; they
cannot see that a value produced by ``ntt_limbs`` is *in the NTT domain*
when it is later paired with a coefficient-domain operand three
statements down.  After the fused-limb rewrite (PR 7) those state
invariants — RNS basis, NTT-vs-coefficient domain, modulus-chain level,
rescaled-ness — live only in docstrings and runtime asserts.  This
module makes them machine-checked dataflow facts:

* :class:`HEState` — one abstract value in the lattice
  ``(basis, domain, level, needs_rescale, seeded)`` where each component
  is either a definite value or ``None`` (= top / unknown).  Joins are
  pointwise: components that disagree widen to unknown, and **checks
  only ever fire on definite conflicts**, so the analysis is silent
  wherever it cannot prove a hazard.
* :data:`TRANSFERS` — the declarative transfer-function table over the
  ``repro.he`` / ``repro.math`` / ``repro.core`` API surface
  (``ntt_limbs: coeff -> ntt``, ``multiply_plain: needs-rescale``,
  ``rescale_last: L -> L-1``, ``extend_to: base -> aug`` ...).  Rules
  never hard-code API knowledge; they read this table.
* :class:`ModuleAnalysis` / :func:`analyze_source` — the abstract
  interpreter: assignments, tuple unpacking, containers, calls (table
  entries plus same-module function summaries), branches (join) and
  loops (fixed point with widening after :data:`MAX_LOOP_ITERATIONS`).
* Rules ``REPRO201..REPRO206`` — thin adapters that surface the
  interpreter's findings through the PR-4 rule registry, so the noqa
  machinery, the CLI and the CI gate all apply unchanged.

The interpreter is deliberately *optimistic about the unknown*: a value
it cannot type (parameters, attribute loads, unlisted calls) carries no
definite components and can never trip a check.  The cost is missed
bugs, never false alarms — the property the ``src/repro`` self-check
(``tests/test_dataflow_analysis.py``) depends on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .core import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    Rule,
    SourceFile,
    register,
)

__all__ = [
    "HEState",
    "ContainerState",
    "Transfer",
    "TRANSFERS",
    "Finding",
    "ModuleAnalysis",
    "analyze_source",
    "MAX_LOOP_ITERATIONS",
    "DEFAULT_LEVEL",
]

#: quiet iterations before the widening join forces convergence
MAX_LOOP_ITERATIONS = 4

#: fresh ciphertexts sit at the top of the (short) CHAM modulus chain:
#: {q0, q1} leaves exactly one rescale before the chain floor
DEFAULT_LEVEL = 1

BASE = "base"
AUG = "aug"
COEFF = "coeff"
NTT = "ntt"


# ---------------------------------------------------------------------------
# the lattice


@dataclass(frozen=True)
class HEState:
    """One abstract HE value.  ``None`` components mean *unknown* (top).

    ``aug_tracked`` marks values that *entered* the augmented basis via
    an explicit basis extension (``extend_to``): those must be consumed
    by key-switch / rescale inside the same region (REPRO204).
    ``from_mixed`` marks values read back out of a container that held
    conflicting states — their history is gone (REPRO206).
    """

    basis: Optional[str] = None  # "base" | "aug" | None
    domain: Optional[str] = None  # "coeff" | "ntt" | None
    level: Optional[int] = None  # chain position; None = unknown
    needs_rescale: Optional[bool] = None
    seeded: Optional[bool] = None
    aug_tracked: bool = False
    from_mixed: bool = False

    def join(self, other: "HEState") -> "HEState":
        """Pointwise lattice join: disagreement widens to unknown."""
        return HEState(
            basis=_join(self.basis, other.basis),
            domain=_join(self.domain, other.domain),
            level=_join(self.level, other.level),
            needs_rescale=_join(self.needs_rescale, other.needs_rescale),
            seeded=_join(self.seeded, other.seeded),
            aug_tracked=self.aug_tracked or other.aug_tracked,
            from_mixed=self.from_mixed or other.from_mixed,
        )

    @property
    def is_definite(self) -> bool:
        return any(
            comp is not None
            for comp in (
                self.basis,
                self.domain,
                self.level,
                self.needs_rescale,
            )
        )


def _join(a: object, b: object) -> Optional[object]:
    return a if a == b else None


@dataclass(frozen=True)
class ContainerState:
    """A list/dict/set holding HE values: the join of everything stored.

    ``mixed_domain`` / ``mixed_level`` record that two *definite but
    conflicting* states were stored — the point where per-element state
    is irrecoverably lost (an untyped container has no slot types).
    """

    elem: Optional[HEState] = None
    mixed_domain: bool = False
    mixed_level: bool = False

    def store(self, value: HEState) -> "ContainerState":
        if self.elem is None:
            return ContainerState(elem=value)
        mixed_domain = self.mixed_domain or (
            self.elem.domain is not None
            and value.domain is not None
            and self.elem.domain != value.domain
        )
        mixed_level = self.mixed_level or (
            self.elem.level is not None
            and value.level is not None
            and self.elem.level != value.level
        )
        return ContainerState(
            elem=self.elem.join(value),
            mixed_domain=mixed_domain,
            mixed_level=mixed_level,
        )

    def load(self) -> Optional[HEState]:
        if self.elem is None:
            return None
        if self.mixed_domain or self.mixed_level:
            return replace(self.elem, from_mixed=True)
        return self.elem

    def join(self, other: "ContainerState") -> "ContainerState":
        if self.elem is None:
            elem = other.elem
        elif other.elem is None:
            elem = self.elem
        else:
            elem = self.elem.join(other.elem)
        return ContainerState(
            elem=elem,
            mixed_domain=self.mixed_domain or other.mixed_domain,
            mixed_level=self.mixed_level or other.mixed_level,
        )


AbstractValue = Union[HEState, ContainerState]


# ---------------------------------------------------------------------------
# the declarative transfer-function table


@dataclass(frozen=True)
class Transfer:
    """One API summary: what a call does to the abstract state.

    ``subject`` selects the flowing operand: ``"arg0"`` (first
    positional), ``"recv"`` (method receiver), or ``"pair"`` (binary —
    the first two positionals flow and must agree).  ``require_domain``
    fires REPRO201 when the subject's domain is *definitely* different;
    ``pair_domain`` / ``pair_level`` fire REPRO201/202 on definite
    operand disagreement.  The ``out_*`` fields build the result state
    (``"keep"`` copies the subject's component).
    """

    subject: str = "arg0"
    require_domain: Optional[str] = None
    pair_domain: bool = False
    pair_level: bool = False
    #: result construction; None leaves the component unknown
    out_basis: Optional[str] = None  # "base"|"aug"|"keep"
    out_domain: Optional[str] = None  # "coeff"|"ntt"|"keep"
    out_level: Optional[object] = None  # int | "keep" | "dec"
    out_needs_rescale: Optional[object] = None  # bool | "keep" | "pair"
    out_seeded: Optional[object] = None  # bool | "keep"
    #: entering the augmented basis via extension starts REPRO204 tracking
    starts_aug_region: bool = False
    #: key-switch/rescale consumers end REPRO204 tracking
    ends_aug_region: bool = False
    #: consumer must not see a needs-rescale value (REPRO203)
    forbid_needs_rescale: bool = False
    #: consumer must not see an escaped augmented-basis value (REPRO204)
    forbid_aug: bool = False
    #: state-sensitive site: a from_mixed subject fires REPRO206
    state_sensitive: bool = True
    #: produce an HE result even when the subject is untracked
    always_produces: bool = True


#: callee-name (last dotted component) -> summary.  This is the whole
#: interprocedural API model: rules read state, never names.
TRANSFERS: Dict[str, Transfer] = {
    # -- producers ---------------------------------------------------------
    "encrypt_vector": Transfer(
        subject="arg0",
        out_basis=AUG,
        out_domain=COEFF,
        out_level=DEFAULT_LEVEL,
        out_needs_rescale=False,
        state_sensitive=False,
    ),
    "encrypt": Transfer(
        subject="arg0",
        out_basis=BASE,
        out_domain=COEFF,
        out_level=DEFAULT_LEVEL,
        out_needs_rescale=False,
        state_sensitive=False,
    ),
    "encrypt_pk": Transfer(
        subject="arg0",
        out_basis=BASE,
        out_domain=COEFF,
        out_level=DEFAULT_LEVEL,
        out_needs_rescale=False,
        state_sensitive=False,
    ),
    "plaintext_limbs": Transfer(
        subject="arg0", out_domain=COEFF, state_sensitive=False
    ),
    "scaled_plaintext_limbs": Transfer(
        subject="arg0", out_domain=COEFF, state_sensitive=False
    ),
    # -- domain movers -----------------------------------------------------
    "ntt_limbs": Transfer(
        subject="arg0",
        require_domain=COEFF,
        out_domain=NTT,
        out_basis="keep",
        out_level="keep",
        out_needs_rescale="keep",
        out_seeded="keep",
    ),
    "intt_limbs": Transfer(
        subject="arg0",
        require_domain=NTT,
        out_domain=COEFF,
        out_basis="keep",
        out_level="keep",
        out_needs_rescale="keep",
        out_seeded="keep",
    ),
    "ntt_forward": Transfer(
        subject="arg0",
        require_domain=COEFF,
        out_domain=NTT,
        out_basis="keep",
        out_level="keep",
        out_needs_rescale="keep",
    ),
    "ntt_inverse": Transfer(
        subject="arg0",
        require_domain=NTT,
        out_domain=COEFF,
        out_basis="keep",
        out_level="keep",
        out_needs_rescale="keep",
    ),
    "ntt_components": Transfer(
        subject="recv",
        require_domain=COEFF,
        out_domain=NTT,
        out_basis="keep",
        out_level="keep",
        out_needs_rescale="keep",
    ),
    # -- products (the needs-rescale producers) ----------------------------
    "multiply_plain": Transfer(
        subject="recv",
        out_basis="keep",
        out_domain=COEFF,
        out_level="keep",
        out_needs_rescale=True,
    ),
    "multiply_plain_ntt": Transfer(
        subject="recv",
        out_basis="keep",
        out_domain=COEFF,
        out_level="keep",
        out_needs_rescale=True,
    ),
    "modmul_vec": Transfer(
        subject="pair",
        pair_domain=True,
        out_basis="keep",
        out_domain="keep",
        out_level="keep",
        out_needs_rescale="pair",
        always_produces=False,
    ),
    # -- linear ops (level discipline) -------------------------------------
    "modadd_vec": Transfer(
        subject="pair",
        pair_domain=True,
        pair_level=True,
        out_basis="keep",
        out_domain="keep",
        out_level="keep",
        out_needs_rescale="keep",
        always_produces=False,
    ),
    "modsub_vec": Transfer(
        subject="pair",
        pair_domain=True,
        pair_level=True,
        out_basis="keep",
        out_domain="keep",
        out_level="keep",
        out_needs_rescale="keep",
        always_produces=False,
    ),
    # -- chain moves -------------------------------------------------------
    "rescale_last": Transfer(
        subject="arg0",
        out_basis=BASE,
        out_domain="keep",
        out_level="dec",
        out_needs_rescale=False,
        ends_aug_region=True,
    ),
    "extend_to": Transfer(
        subject="arg0",
        out_basis=AUG,
        out_domain="keep",
        out_level="keep",
        out_needs_rescale="keep",
        starts_aug_region=True,
    ),
    "extend_to_exact": Transfer(
        subject="arg0",
        out_basis=AUG,
        out_domain="keep",
        out_level="keep",
        out_needs_rescale="keep",
        starts_aug_region=True,
    ),
    # -- key switching -----------------------------------------------------
    "apply_keyswitch": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        out_basis=BASE,
        out_domain="keep",
        out_level="keep",
        out_needs_rescale=False,
        ends_aug_region=True,
    ),
    "key_switch_raw": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        out_basis=BASE,
        out_needs_rescale=False,
        ends_aug_region=True,
    ),
    # -- pack consumers (base basis, rescaled operands only) ---------------
    "pack_lwes": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        forbid_aug=True,
        always_produces=False,
    ),
    "pack_two_lwes": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        forbid_aug=True,
        always_produces=False,
    ),
    "pack_lwes_batched": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        forbid_aug=True,
        always_produces=False,
    ),
    "pack_stacked_lwes": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        forbid_aug=True,
        always_produces=False,
    ),
    "pack_stacked_lwes_many": Transfer(
        subject="arg0",
        forbid_needs_rescale=True,
        forbid_aug=True,
        always_produces=False,
    ),
    # -- decrypt consumers (never the augmented basis) ---------------------
    "decrypt": Transfer(
        subject="arg0", forbid_aug=True, always_produces=False
    ),
    "decrypt_plaintext": Transfer(
        subject="arg0", forbid_aug=True, always_produces=False
    ),
    "decrypt_coeffs": Transfer(
        subject="arg0", forbid_aug=True, always_produces=False
    ),
    # -- seededness --------------------------------------------------------
    "default_rng": Transfer(
        subject="arg0",
        out_seeded=True,
        state_sensitive=False,
    ),
    "fork": Transfer(subject="recv", out_seeded=True, state_sensitive=False),
}

#: pack-consumer subjects are whole argument lists: every positional arg
#: (not just arg0) is checked, because the LWE stacks come in pairs
_CHECK_ALL_ARGS = {
    "pack_lwes",
    "pack_two_lwes",
    "pack_lwes_batched",
    "pack_stacked_lwes",
    "pack_stacked_lwes_many",
    "decrypt",
    "decrypt_plaintext",
    "decrypt_coeffs",
}

#: np helpers that pass their first argument's state through untouched
_PASSTHROUGH = {
    "stack",
    "concatenate",
    "ascontiguousarray",
    "asarray",
    "copy",
    "array",
    "freeze_array",
}


# ---------------------------------------------------------------------------
# findings


@dataclass(frozen=True)
class Finding:
    """One interpreter-detected hazard, pre-registry."""

    rule_id: str
    line: int
    col: int
    message: str


@dataclass
class ModuleAnalysis:
    """Result of abstractly interpreting one module."""

    findings: List[Finding] = field(default_factory=list)
    #: function qualname -> joined return state (the summaries)
    summaries: Dict[str, HEState] = field(default_factory=dict)
    #: per-function loop iteration counts (all must have converged)
    loop_iterations: Dict[str, int] = field(default_factory=dict)
    functions_analyzed: int = 0
    converged: bool = True


# ---------------------------------------------------------------------------
# the interpreter


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class _Interp:
    """Abstract interpretation of one function (or the module body)."""

    def __init__(
        self,
        src: SourceFile,
        summaries: Dict[str, HEState],
        qualname: str,
        quiet: bool = False,
    ) -> None:
        self.src = src
        self.summaries = summaries
        self.qualname = qualname
        self.quiet = quiet
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[str, int, int, str]] = set()
        self.return_state: Optional[HEState] = None
        self.loop_iterations = 0
        self.converged = True

    # -- reporting ---------------------------------------------------------

    def emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if self.quiet:
            return
        key = (
            rule_id,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                rule_id=rule_id,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    # -- environment helpers -----------------------------------------------

    @staticmethod
    def _join_env(
        a: Dict[str, AbstractValue], b: Dict[str, AbstractValue]
    ) -> Dict[str, AbstractValue]:
        out: Dict[str, AbstractValue] = {}
        for name in set(a) | set(b):
            va, vb = a.get(name), b.get(name)
            if va is None or vb is None:
                # bound on one path only: keep it, but nothing definite
                # survives the join unless both paths agree it exists
                keep = va if va is not None else vb
                if isinstance(keep, ContainerState):
                    out[name] = keep
                else:
                    out[name] = HEState(
                        aug_tracked=keep.aug_tracked,
                        from_mixed=keep.from_mixed,
                    )
            elif type(va) is not type(vb):
                continue  # container on one path, scalar on the other
            elif isinstance(va, ContainerState):
                out[name] = va.join(vb)  # type: ignore[arg-type]
            else:
                out[name] = va.join(vb)  # type: ignore[union-attr]
        return out

    @staticmethod
    def _widen_env(
        stable: Dict[str, AbstractValue], nxt: Dict[str, AbstractValue]
    ) -> Dict[str, AbstractValue]:
        """Force convergence: any still-changing component goes to top."""
        out: Dict[str, AbstractValue] = {}
        for name in set(stable) | set(nxt):
            va, vb = stable.get(name), nxt.get(name)
            if va == vb and va is not None:
                out[name] = va
                continue
            tracked = False
            mixed = False
            for v in (va, vb):
                if isinstance(v, HEState):
                    tracked = tracked or v.aug_tracked
                    mixed = mixed or v.from_mixed
            if isinstance(va, ContainerState) or isinstance(
                vb, ContainerState
            ):
                out[name] = ContainerState(elem=HEState())
            else:
                out[name] = HEState(aug_tracked=tracked, from_mixed=mixed)
        return out

    # -- expression evaluation ---------------------------------------------

    def eval(
        self, node: Optional[ast.AST], env: Dict[str, AbstractValue]
    ) -> Optional[AbstractValue]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, (ast.List, ast.Set, ast.Tuple)):
            cont = ContainerState()
            for elt in node.elts:
                v = self.eval(elt, env)
                if isinstance(v, HEState):
                    cont = cont.store(v)
            return cont
        if isinstance(node, ast.Dict):
            cont = ContainerState()
            for v_node in node.values:
                v = self.eval(v_node, env)
                if isinstance(v, HEState):
                    cont = cont.store(v)
            return cont
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = dict(env)
            for gen in node.generators:
                src_v = self.eval(gen.iter, inner)
                if isinstance(gen.target, ast.Name):
                    if isinstance(src_v, ContainerState):
                        elem = src_v.load()
                        if elem is not None:
                            inner[gen.target.id] = elem
            v = self.eval(node.elt, inner)
            cont = ContainerState()
            if isinstance(v, HEState):
                cont = cont.store(v)
            return cont
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            if isinstance(base, ContainerState):
                return base.load()
            if isinstance(base, HEState):
                # a limb slice of an HE stack keeps the stack's state
                return base
            return None
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, ast.IfExp):
            a = self.eval(node.body, env)
            b = self.eval(node.orelse, env)
            if isinstance(a, HEState) and isinstance(b, HEState):
                return a.join(b)
            return a if a is not None else b
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            if isinstance(left, HEState) and isinstance(right, HEState):
                self._check_pair(node, left, right, check_level=True)
                return left.join(right)
            if isinstance(left, HEState):
                return left
            if isinstance(right, HEState):
                return right
            return None
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.Await):
            return self.eval(node.value, env)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name) and value is not None:
                env[node.target.id] = value
            return value
        return None

    # -- checks ------------------------------------------------------------

    def _check_pair(
        self,
        node: ast.AST,
        a: HEState,
        b: HEState,
        check_domain: bool = True,
        check_level: bool = False,
        opname: str = "operand pairing",
    ) -> None:
        if (
            check_domain
            and a.domain is not None
            and b.domain is not None
            and a.domain != b.domain
        ):
            self.emit(
                "REPRO201",
                node,
                f"domain-mismatched {opname}: {a.domain}-domain operand "
                f"combined with a {b.domain}-domain operand (transform "
                "both sides to the same domain before pairing them)",
            )
        if (
            check_level
            and a.level is not None
            and b.level is not None
            and a.level != b.level
        ):
            self.emit(
                "REPRO202",
                node,
                f"level-mismatched {opname}: operand at chain level "
                f"{a.level} combined with an operand at level {b.level} "
                "(rescale the higher operand down first — moduli differ "
                "across levels, so the residues are incompatible)",
            )

    def _check_consumer(
        self, node: ast.AST, state: HEState, callee: str, transfer: Transfer
    ) -> None:
        if transfer.state_sensitive and state.from_mixed:
            self.emit(
                "REPRO206",
                node,
                f"value reaching `{callee}` came out of an untyped "
                "container that held ciphertexts in conflicting states — "
                "its basis/domain/level history is lost; keep container "
                "contents state-homogeneous or use a typed wrapper",
            )
        if transfer.forbid_needs_rescale and state.needs_rescale is True:
            self.emit(
                "REPRO203",
                node,
                f"un-rescaled product flows into `{callee}`: multiply "
                "outputs carry a pending rescale and must pass through "
                "rescale_last before pack/key-switch (the extra scale "
                "factor corrupts the packed message)",
            )
        if transfer.forbid_aug and state.basis == AUG:
            self.emit(
                "REPRO204",
                node,
                f"augmented-basis value flows into `{callee}`: "
                "{q0,q1,p}-basis values exist only inside the key-switch "
                "region and must be rescaled back to the base basis first",
            )
        if transfer.require_domain is not None and (
            state.domain is not None
            and state.domain != transfer.require_domain
        ):
            self.emit(
                "REPRO201",
                node,
                f"`{callee}` expects a {transfer.require_domain}-domain "
                f"operand but receives a {state.domain}-domain value "
                "(double transforms silently scramble coefficients)",
            )

    # -- calls -------------------------------------------------------------

    def eval_call(
        self, node: ast.Call, env: Dict[str, AbstractValue]
    ) -> Optional[AbstractValue]:
        callee = _callee_name(node.func)
        # evaluate arguments (left to right, NamedExpr effects included)
        arg_values: List[Optional[AbstractValue]] = [
            self.eval(a, env) for a in node.args
        ]
        for kw in node.keywords:
            self.eval(kw.value, env)
        recv_value: Optional[AbstractValue] = None
        if isinstance(node.func, ast.Attribute):
            recv_value = self.eval(node.func.value, env)

        if callee in _PASSTHROUGH:
            return arg_values[0] if arg_values else None

        transfer = TRANSFERS.get(callee)
        if transfer is None:
            # same-module summary (the interprocedural step)
            summary = self._resolve_summary(node.func)
            if summary is not None:
                return summary
            return None

        # pick the flowing subject(s)
        def as_he(v: Optional[AbstractValue]) -> Optional[HEState]:
            if isinstance(v, ContainerState):
                return v.load()
            return v if isinstance(v, HEState) else None

        subjects: List[Tuple[ast.AST, Optional[HEState]]] = []
        if callee in _CHECK_ALL_ARGS:
            subjects = [
                (arg, as_he(v)) for arg, v in zip(node.args, arg_values)
            ]
        elif transfer.subject == "recv":
            subjects = [(node, as_he(recv_value))]
        elif transfer.subject == "pair":
            if len(node.args) >= 2:
                a = as_he(arg_values[0])
                b = as_he(arg_values[1])
                if a is not None and b is not None:
                    self._check_pair(
                        node,
                        a,
                        b,
                        check_domain=transfer.pair_domain,
                        check_level=transfer.pair_level,
                        opname=f"`{callee}` operands",
                    )
                subjects = [
                    (node.args[0], a),
                    (node.args[1], b),
                ]
        else:  # arg0
            if node.args:
                subjects = [(node.args[0], as_he(arg_values[0]))]

        subject_state: Optional[HEState] = None
        for site, st in subjects:
            if st is None:
                continue
            self._check_consumer(site, st, callee, transfer)
            if callee == "rescale_last" and st.level == 0:
                self.emit(
                    "REPRO205",
                    node,
                    "modulus-chain underflow: rescale_last on a value "
                    "already at chain level 0 — there is no limb left to "
                    "drop (budget the chain or gate on the level)",
                )
            subject_state = (
                st if subject_state is None else subject_state.join(st)
            )

        # build the result state
        if subject_state is None and not transfer.always_produces:
            return None
        subj = subject_state or HEState()

        def pick(spec: Optional[object], current: Optional[object]) -> object:
            if spec == "keep":
                return current
            return spec

        level: Optional[int]
        if transfer.out_level == "dec":
            level = subj.level - 1 if subj.level is not None else None
        elif transfer.out_level == "keep":
            level = subj.level
        else:
            level = transfer.out_level  # type: ignore[assignment]

        needs: Optional[bool]
        if transfer.out_needs_rescale == "pair":
            both_he = (
                transfer.subject == "pair"
                and len(subjects) == 2
                and all(st is not None for _, st in subjects)
            )
            needs = True if both_he else subj.needs_rescale
        elif transfer.out_needs_rescale == "keep":
            needs = subj.needs_rescale
        else:
            needs = transfer.out_needs_rescale  # type: ignore[assignment]

        seeded: Optional[bool]
        if transfer.out_seeded == "keep":
            seeded = subj.seeded
        elif callee == "default_rng":
            # seeded iff called with a non-None literal/derived argument
            seeded = bool(node.args or node.keywords) and not any(
                isinstance(sub, ast.Constant) and sub.value is None
                for a in list(node.args)
                + [kw.value for kw in node.keywords]
                for sub in ast.walk(a)
            )
        else:
            seeded = pick(transfer.out_seeded, subj.seeded)  # type: ignore[assignment]

        aug_tracked = subj.aug_tracked
        if transfer.starts_aug_region:
            aug_tracked = True
        if transfer.ends_aug_region:
            aug_tracked = False

        return HEState(
            basis=pick(transfer.out_basis, subj.basis),  # type: ignore[arg-type]
            domain=pick(transfer.out_domain, subj.domain),  # type: ignore[arg-type]
            level=level,
            needs_rescale=needs,
            seeded=seeded,
            aug_tracked=aug_tracked,
            from_mixed=False,
        )

    def _resolve_summary(self, func: ast.AST) -> Optional[HEState]:
        """Same-module call resolution: bare names and self.method()."""
        if isinstance(func, ast.Name):
            return self.summaries.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            # method of the enclosing class first, then a unique match
            cls = self.qualname.rsplit(".", 1)[0] if "." in self.qualname else ""
            qual = f"{cls}.{func.attr}"
            if qual in self.summaries:
                return self.summaries[qual]
            matches = [
                v
                for k, v in self.summaries.items()
                if k.endswith(f".{func.attr}")
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    # -- statements --------------------------------------------------------

    def exec_block(
        self, stmts: Sequence[ast.stmt], env: Dict[str, AbstractValue]
    ) -> Dict[str, AbstractValue]:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def _bind(
        self,
        target: ast.AST,
        value: Optional[AbstractValue],
        env: Dict[str, AbstractValue],
        value_node: Optional[ast.AST] = None,
    ) -> None:
        if isinstance(target, ast.Name):
            if value is not None:
                env[target.id] = value
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(value, ContainerState):
                    self._bind(elt, value.load(), env)
                else:
                    self._bind(elt, value, env)
        elif isinstance(target, ast.Attribute):
            # storing an aug-region value into an attribute lets it
            # outlive the key-switch region
            if (
                isinstance(value, HEState)
                and value.basis == AUG
                and value.aug_tracked
            ):
                self.emit(
                    "REPRO204",
                    value_node or target,
                    "augmented-basis value escapes the key-switch region "
                    "through an attribute store: extend_to outputs must "
                    "be consumed by key_switch/rescale_last in the same "
                    "region, never persisted",
                )
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and isinstance(value, HEState):
                existing = env.get(base.id)
                if isinstance(existing, ContainerState):
                    env[base.id] = existing.store(value)

    def exec_stmt(
        self, stmt: ast.stmt, env: Dict[str, AbstractValue]
    ) -> Dict[str, AbstractValue]:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env, value_node=stmt.value)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._bind(stmt.target, value, env, value_node=stmt.value)
            return env
        if isinstance(stmt, ast.AugAssign):
            left = self.eval(stmt.target, env)
            right = self.eval(stmt.value, env)
            if isinstance(left, HEState) and isinstance(right, HEState):
                self._check_pair(stmt, left, right, check_level=True)
                self._bind(stmt.target, left.join(right), env)
            return env
        if isinstance(stmt, ast.Expr):
            # container mutation calls: xs.append(ct), d.setdefault(...)
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("append", "add", "insert", "extend")
                and isinstance(value.func.value, ast.Name)
            ):
                name = value.func.value.id
                existing = env.get(name)
                stored = (
                    self.eval(value.args[-1], env) if value.args else None
                )
                if isinstance(existing, ContainerState) and isinstance(
                    stored, HEState
                ):
                    env[name] = existing.store(stored)
                    return env
            self.eval(value, env)
            return env
        if isinstance(stmt, ast.Return):
            value = self.eval(stmt.value, env) if stmt.value else None
            state = (
                value.load() if isinstance(value, ContainerState) else value
            )
            if isinstance(state, HEState):
                if state.basis == AUG and state.aug_tracked:
                    self.emit(
                        "REPRO204",
                        stmt,
                        "augmented-basis value escapes the key-switch "
                        "region through a return: extend_to outputs must "
                        "be consumed by key_switch/rescale_last before "
                        "leaving the function",
                    )
                self.return_state = (
                    state
                    if self.return_state is None
                    else self.return_state.join(state)
                )
            return env
        if isinstance(stmt, ast.If):
            then_env = self.exec_block(stmt.body, dict(env))
            else_env = self.exec_block(stmt.orelse, dict(env))
            return self._join_env(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, env)
        if isinstance(stmt, ast.While):
            return self._exec_loop(stmt, env)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_block(stmt.body, dict(env))
            out = self._join_env(env, body_env)
            for handler in stmt.handlers:
                h_env = self.exec_block(handler.body, dict(out))
                out = self._join_env(out, h_env)
            out = self.exec_block(stmt.orelse, out)
            out = self.exec_block(stmt.finalbody, out)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return env  # nested defs are analyzed as their own functions
        if isinstance(stmt, ast.ClassDef):
            return env
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.eval(stmt.test, env)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    def _exec_loop(
        self,
        stmt: Union[ast.For, ast.AsyncFor, ast.While],
        env: Dict[str, AbstractValue],
    ) -> Dict[str, AbstractValue]:
        """Fixed point with widening, then one reporting pass."""

        def bind_loop_target(e: Dict[str, AbstractValue]) -> None:
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_v = self.eval(stmt.iter, e)
                if isinstance(iter_v, ContainerState):
                    self._bind(stmt.target, iter_v.load(), e)
                elif isinstance(iter_v, HEState):
                    self._bind(stmt.target, iter_v, e)
                else:
                    self._bind(stmt.target, None, e)

        quiet_was = self.quiet
        state = dict(env)
        iterations = 0
        converged = False
        try:
            self.quiet = True
            for _ in range(MAX_LOOP_ITERATIONS):
                iterations += 1
                work = dict(state)
                bind_loop_target(work)
                nxt = self.exec_block(stmt.body, work)
                joined = self._join_env(state, nxt)
                if joined == state:
                    converged = True
                    break
                state = joined
            if not converged:
                # widen whatever is still moving, then verify stability
                work = dict(state)
                bind_loop_target(work)
                nxt = self.exec_block(stmt.body, work)
                state = self._widen_env(state, nxt)
                work = dict(state)
                bind_loop_target(work)
                nxt = self.exec_block(stmt.body, work)
                state = self._join_env(state, nxt)
                iterations += 2
        finally:
            self.quiet = quiet_was
        self.loop_iterations = max(self.loop_iterations, iterations)
        # reporting pass from the stable pre-state
        work = dict(state)
        bind_loop_target(work)
        final = self.exec_block(stmt.body, work)
        out = self._join_env(state, final)
        out = self._join_env(out, env)  # zero-iteration path
        if stmt.orelse:
            out = self.exec_block(stmt.orelse, out)
        return out


# ---------------------------------------------------------------------------
# module driver


def _iter_functions(
    tree: ast.Module,
) -> List[Tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]]:
    """(qualname, node) for module functions and class methods."""
    out: List[Tuple[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]]] = []

    def walk(nodes: Sequence[ast.stmt], prefix: str) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                out.append((qual, node))
                walk(node.body, f"{qual}.<locals>.")
            elif isinstance(node, ast.ClassDef):
                walk(node.body, f"{prefix}{node.name}.")

    walk(tree.body, "")
    return out


def _module_level_stmts(tree: ast.Module) -> List[ast.stmt]:
    return [
        s
        for s in tree.body
        if not isinstance(
            s, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]


_CACHE: Dict[Tuple[str, int], ModuleAnalysis] = {}
_CACHE_LIMIT = 256


def analyze_source(src: SourceFile) -> ModuleAnalysis:
    """Interpret every function in ``src`` (cached per content hash)."""
    key = (src.rel, hash(src.text))
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    analysis = _analyze(src)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = analysis
    return analysis


def _analyze(src: SourceFile) -> ModuleAnalysis:
    analysis = ModuleAnalysis()
    try:
        tree = src.tree
    except SyntaxError:
        return analysis  # the engine reports REPRO000 separately
    functions = _iter_functions(tree)
    summaries: Dict[str, HEState] = {}
    # two quiet summary passes resolve helper-calls-helper chains
    for _ in range(2):
        for qual, node in functions:
            interp = _Interp(src, summaries, qual, quiet=True)
            interp.exec_block(node.body, {})
            if interp.return_state is not None:
                summaries[qual] = interp.return_state
                # bare-name lookup for module-level functions
                if "." not in qual:
                    summaries[qual] = interp.return_state
    # reporting pass: functions, then the module body
    for qual, node in functions:
        interp = _Interp(src, summaries, qual, quiet=False)
        interp.exec_block(node.body, {})
        analysis.findings.extend(interp.findings)
        analysis.loop_iterations[qual] = interp.loop_iterations
        analysis.converged = analysis.converged and interp.converged
        analysis.functions_analyzed += 1
    module_interp = _Interp(src, summaries, "<module>", quiet=False)
    module_interp.exec_block(_module_level_stmts(tree), {})
    analysis.findings.extend(module_interp.findings)
    analysis.loop_iterations["<module>"] = module_interp.loop_iterations
    analysis.functions_analyzed += 1
    analysis.summaries = summaries
    return analysis


# ---------------------------------------------------------------------------
# registry adapters (REPRO201..206)


class _DataflowRule(Rule):
    """Shared adapter: filter the cached module analysis by rule ID."""

    severity = SEVERITY_ERROR

    def applies_to(self, rel_path: str) -> bool:
        parts = rel_path.split("/")
        name = parts[-1]
        is_test = (
            "tests" in parts
            or name.startswith("test_")
            or name == "conftest.py"
        )
        return not is_test

    def check(self, src: SourceFile) -> List[Diagnostic]:
        analysis = analyze_source(src)
        return [
            Diagnostic(
                path=src.rel,
                line=f.line,
                col=f.col,
                rule_id=self.id,
                severity=self.severity,
                message=f.message,
            )
            for f in analysis.findings
            if f.rule_id == self.id
        ]


@register
class DomainMismatch(_DataflowRule):
    id = "REPRO201"
    name = "domain-mismatch"
    rationale = (
        "NTT-domain and coefficient-domain limb stacks are pointwise "
        "incompatible: pairing them (or double-transforming one) "
        "scrambles every coefficient — the HF-NTT hazard class, caught "
        "by tracking domain through the dataflow"
    )


@register
class LevelMismatch(_DataflowRule):
    id = "REPRO202"
    name = "level-mismatch"
    rationale = (
        "modadd/modsub of values at different modulus-chain levels "
        "reduces against different moduli; the result decodes to "
        "garbage even though every individual op is exact"
    )


@register
class MultiplyWithoutRescale(_DataflowRule):
    id = "REPRO203"
    name = "multiply-without-rescale"
    rationale = (
        "multiply outputs carry a pending scale factor; packing or "
        "key-switching them before rescale_last embeds the factor into "
        "the message (CHAM's pipeline rescales between DOTPRODUCT and "
        "PACKLWES for exactly this reason)"
    )


@register
class AugmentedBasisEscape(_DataflowRule):
    id = "REPRO204"
    name = "augmented-basis-escape"
    rationale = (
        "the augmented basis {q0,q1,p} exists only inside the "
        "key-switch region; a value that leaves it (return, attribute "
        "store, pack/decrypt) still carries the special modulus p and "
        "is not a valid ciphertext anywhere else"
    )


@register
class ChainUnderflow(_DataflowRule):
    id = "REPRO205"
    name = "chain-underflow"
    rationale = (
        "each rescale_last drops one chain limb; dropping past the "
        "chain floor leaves no modulus to carry the message — depth "
        "must be budgeted against the chain length"
    )


@register
class StateLostInContainer(_DataflowRule):
    id = "REPRO206"
    name = "state-lost-in-container"
    rationale = (
        "an untyped list/dict holding ciphertexts in conflicting "
        "states erases per-element basis/domain/level history; "
        "downstream state-sensitive kernels then operate blind"
    )
    severity = SEVERITY_WARNING
