"""RNS-hybrid key-switching (the KEYSWITCH unit of Alg. 2 / stage 5-9).

Given a polynomial ``c`` (mod ``Q``) that multiplies a foreign secret
``s_src`` inside a ciphertext phase, :func:`key_switch_raw` rewrites the
term onto the native secret ``s``:

1. *decompose*: the RNS limbs ``[c]_{q_i}`` of ``c`` themselves act as the
   (word-sized) digits — no explicit base-``w`` decomposition is needed;
2. *inner product* with the switching key in the NTT domain over the
   augmented basis ``Qp``;
3. *divide-and-round by p* (an RNS rescale) back to ``Q``.

The noise added is ``≈ sqrt(dnum * n) * max(q_i) * σ / p`` — a few bits
for CHAM's parameters, which is exactly why the paper budgets the third
39-bit modulus for key-switching (Section II-F).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import obs
from ..math.modular import modadd_vec, modmul_vec
from .context import CheContext
from .keys import KeySwitchKey
from .rlwe import RlweCiphertext

__all__ = ["key_switch_raw", "key_switch_raw_loop", "apply_keyswitch"]


def key_switch_raw(
    ctx: CheContext, c: np.ndarray, ksk: KeySwitchKey
) -> Tuple[np.ndarray, np.ndarray]:
    """Key-switch the polynomial ``c`` (normal-basis limb stack ``(L, n)``).

    ``c`` may carry extra batch axes between the limb and coefficient
    axes — shape ``(L, *batch, n)`` switches every polynomial in the
    stack through one pass (the key limbs broadcast), which is what the
    batched PACKLWES kernel relies on.

    Returns ``(d0, d1)``: normal-basis limb stacks such that

    ``d0 + d1 * s  ≈  c * s_src   (mod Q)``

    with word-sized additive noise.

    This is the *fused-limb* implementation: instead of the per-digit /
    per-limb double loop (``2 * L * (L+1)`` small array ops plus
    ``L * (L+1)`` separate NTTs), it

    1. embeds every digit into every augmented limb in one broadcast
       remainder — a ``(L_aug, L, *batch, n)`` stack;
    2. runs **one** fused NTT sweep over that whole stack;
    3. forms *both* inner products with a single broadcast modmul pass
       against the combined key stack (``(L_aug, 2, L, n)``) and a
       modadd reduction over the digit axis;
    4. inverse-transforms and rescales ``acc0``/``acc1`` together as a
       single ``(L_aug, 2, *batch, n)`` stack.

    Output is bit-identical per RNS limb to the reference double loop
    (:func:`key_switch_raw_loop`), which the property suite enforces.
    """
    params = ctx.params
    aug = ctx.aug_basis
    ct_moduli = params.ct_moduli
    if c.ndim < 2 or c.shape[0] != len(ct_moduli) or c.shape[-1] != ctx.n:
        raise ValueError(f"expected normal-basis stack, got shape {c.shape}")
    batch = int(np.prod(c.shape[1:-1], dtype=np.int64)) if c.ndim > 2 else 1
    obs.inc("he.keyswitch.calls", batch)
    n_aug = len(aug)
    n_digits = len(ct_moduli)

    # span lives here (not in apply_keyswitch) so *every* key-switch —
    # including the batched PACKLWES path — is attributed in the profiler
    with obs.span("KEYSWITCH", limbs=n_digits, batch=batch):
        # (1) digit embedding: each RNS digit is word-sized, so plain
        # reduction — not centered — into every augmented limb is the
        # correct embedding.  One vectorized remainder against the
        # modulus column replaces the old per-(i, j) stack of copies and
        # never leaves uint64 (no intermediate upcasts, no double
        # reduction of word-sized digits).
        aug_col = aug.modulus_column.reshape((n_aug,) + (1,) * c.ndim)
        digit_limbs = c[np.newaxis] % aug_col  # (L_aug, L, *batch, n)
        assert digit_limbs.dtype == np.uint64, digit_limbs.dtype
        assert digit_limbs.dtype == np.uint64, digit_limbs.dtype
        # (2) one fused butterfly sweep over all L_aug * L polynomials
        digit_ntt = ctx.ntt_limbs(digit_limbs, aug)
        # (3) both inner products in one broadcast pass: the combined
        # (L_aug, 2, L, n) key against the (L_aug, 1, L, *batch, n)
        # digit stack, then a modadd reduction over the digit axis
        key_shape = (n_aug, 2, n_digits) + (1,) * (c.ndim - 2) + (ctx.n,)
        key = ksk.fused_stack().reshape(key_shape)
        prod = modmul_vec(digit_ntt[:, np.newaxis], key, aug_col[:, np.newaxis])
        acc = prod[:, :, 0]  # (L_aug, 2, *batch, n)
        for i in range(1, n_digits):
            acc = modadd_vec(acc, prod[:, :, i], aug_col)
        # (4) both components share one inverse transform + rescale
        d = aug.rescale_last(ctx.intt_limbs(acc, aug))
        d0 = np.ascontiguousarray(d[:, 0])
        d1 = np.ascontiguousarray(d[:, 1])
    return d0, d1


def key_switch_raw_loop(
    ctx: CheContext, c: np.ndarray, ksk: KeySwitchKey
) -> Tuple[np.ndarray, np.ndarray]:
    """Reference per-digit / per-limb key-switch (the differential oracle).

    This is the original double-loop implementation, kept verbatim so
    the fused path has a bit-identity oracle (``tests/
    test_fastpath_properties.py``).  Not instrumented and not used on
    any hot path — call :func:`key_switch_raw` instead.
    """
    params = ctx.params
    aug = ctx.aug_basis
    ct_moduli = params.ct_moduli
    if c.ndim < 2 or c.shape[0] != len(ct_moduli) or c.shape[-1] != ctx.n:
        raise ValueError(f"expected normal-basis stack, got shape {c.shape}")
    acc0 = np.zeros((len(aug),) + c.shape[1:], dtype=np.uint64)
    acc1 = np.zeros((len(aug),) + c.shape[1:], dtype=np.uint64)
    for i, _qi in enumerate(ct_moduli):
        digit = c[i]  # the i-th RNS digit, an integer in [0, q_i)
        digit_limbs = np.stack([digit % np.uint64(qj) for qj in aug])
        digit_ntt = np.stack(
            [ctx.ntt(qj).forward(digit_limbs[j]) for j, qj in enumerate(aug)]
        )
        for j, qj in enumerate(aug):
            acc0[j] = modadd_vec(
                acc0[j], modmul_vec(digit_ntt[j], ksk.b_ntt[i][j], qj), qj
            )
            acc1[j] = modadd_vec(
                acc1[j], modmul_vec(digit_ntt[j], ksk.a_ntt[i][j], qj), qj
            )
    d0 = aug.rescale_last(
        np.stack([ctx.ntt(qj).inverse(acc0[j]) for j, qj in enumerate(aug)])
    )
    d1 = aug.rescale_last(
        np.stack([ctx.ntt(qj).inverse(acc1[j]) for j, qj in enumerate(aug)])
    )
    return d0, d1


def apply_keyswitch(ct: RlweCiphertext, ksk: KeySwitchKey) -> RlweCiphertext:
    """Switch a ciphertext decryptable under ``s_src`` to the key ``s``.

    ``ct = (c0, c1)`` with ``c0 + c1 s_src = Δm + e`` becomes
    ``(c0 + d0, d1)`` with ``d0 + d1 s ≈ c1 s_src``.
    """
    ctx = ct.ctx
    if ct.is_augmented:
        raise ValueError(
            "key-switching operates on normal-basis ciphertexts "
            "(rescale the augmented ciphertext first)"
        )
    d0, d1 = key_switch_raw(ctx, ct.c1, ksk)
    c0 = np.stack(
        [modadd_vec(ct.c0[i], d0[i], q) for i, q in enumerate(ct.basis)]
    )
    return RlweCiphertext(ctx, ct.basis, c0, d1)
