"""Scatter/compute/gather execution of HMVP requests across a cluster.

:class:`ClusterExecutor` is the data path on top of the planning layer
(:mod:`repro.cluster.partition`) and the node pool
(:mod:`repro.cluster.placement`):

* **scatter** — hoist each request's vector ciphertext tiles once (the
  forward NTTs depend only on the ciphertext), then walk the shard grid:
  each shard's offload is simulated on its primary node's RAS runtime
  (register-descriptor load, job submit, one poll attempt);
* **failover** — a :class:`~repro.hw.runtime.DeviceHangError` /
  ``FAILED`` attempt reroutes the shard to the next replica
  (``cluster.shard_retries`` / ``cluster.rebalance_events``), bounded by
  the request deadline in *simulated* time; when every replica pass is
  exhausted (or the deadline budget is), the shard **degrades** to the
  CPU path — the functional result is identical, only the pricing
  changes — so no request is ever dropped;
* **gather** — column-shard partials merge with exact modular addition
  (the LWE-level additive merge; valid because every shard rescaled the
  same ciphertext-tile boundaries the unsharded path does), row bands
  concatenate in row order, and the full stacked LWEs pack centrally
  through :func:`repro.he.packing.pack_stacked_lwes` — the output RLWE
  ciphertext is bit-identical to the unsharded engine's, per limb.

The differential and metamorphic suites
(``tests/test_cluster_differential.py`` /
``tests/test_cluster_properties.py``) pin both halves of that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from .. import obs
from ..core.hmvp import HmvpOpCount, HmvpResult
from ..he.bfv import BfvScheme
from ..he.packing import pack_stacked_lwes
from ..he.rlwe import RlweCiphertext
from ..hw.arch import ChamConfig, cham_default_config
from ..hw.perf import CpuCostModel
from ..hw.runtime import DeviceHangError, FaultInjector, JobState, RegisterLoadError
from ..hw.topology import COORDINATOR
from ..math.modular import modadd_vec
from .autoscaler import Autoscaler
from .interconnect import ClusterInterconnect
from .membership import ClusterController, MembershipSchedule
from .partition import (
    CommSpec,
    PartitionError,
    PartitionPlan,
    PartitionPlanner,
    Shard,
)
from .placement import ClusterNode, ShardPlacement, build_nodes

__all__ = [
    "ClusterConfig",
    "ShardOutcome",
    "ClusterReport",
    "ClusterExecutor",
]

#: shard-descriptor register file base (disjoint from the serve layer's)
_REGISTER_BASE = 0x2000


@dataclass
class ClusterConfig:
    """Cluster policy knobs (defaults model a 4-node scale-out)."""

    #: simulated accelerator nodes
    nodes: int = 4
    #: copies of every shard (1 = no failover capacity)
    replication: int = 2
    #: extra passes over a shard's replica list before degrading to CPU
    max_retries: int = 1
    #: per-request failover budget in *simulated* milliseconds
    deadline_ms: float = 60_000.0
    #: device hang probability per shard offload (per-node injectors
    #: seeded ``seed + node_id``)
    fault_rate: float = 0.0
    register_flip_rate: float = 0.0
    resets_to_recover: int = 1
    seed: int = 0
    #: rows per output pack of the gathered result; defaults to the ring
    #: degree (the unsharded engine's tile structure)
    tile_rows: Optional[int] = None
    #: interconnect model: ``None`` keeps the historical free-comm
    #: behavior (no simulator attached at all); ``"ideal"`` attaches the
    #: zero-cost fabric (flits counted, zero cycles — bit-identical
    #: timing to ``None``); ``"ring"``/``"mesh"``/``"fat-tree"`` charge
    #: real contention through :mod:`repro.hw.netsim`
    topology: Optional[str] = None
    #: bytes per cycle each link accepts (ignored when ``topology=None``)
    link_bandwidth: int = 64
    #: pipeline cycles per hop
    link_latency: int = 4
    #: wire flit size; payloads round up to whole flits
    flit_bytes: int = 64
    #: input-buffer depth per link (credit count), >= 2
    net_buffer_flits: int = 4


@dataclass
class ShardOutcome:
    """How one shard of one request was served."""

    shard_id: int
    #: node that served it; ``None`` for the CPU-degraded path
    node_id: Optional[int]
    attempts: int = 1
    rerouted: bool = False
    degraded: bool = False
    cycles: int = 0


@dataclass
class ClusterReport:
    """Aggregate outcome of an executor's lifetime (so far)."""

    requests: int
    rows: int
    cols: int
    #: currently active node count (the initial count pre-elastic)
    nodes: int
    replication: int
    shards_per_request: int
    shard_executions: int
    shard_retries: int
    rebalance_events: int
    degraded_shards: int
    #: busy cycles per node id — active nodes plus every departed one
    #: (work a node did before leaving/dying still bounds the makespan)
    per_node_busy_cycles: Dict[int, int]
    cpu_fallback_cycles: int
    clock_hz: float
    estimated_single_node_cycles: int
    plan: Dict[str, object] = field(default_factory=dict)
    placement: Dict[str, object] = field(default_factory=dict)
    #: membership counters (zeros on a static, schedule-free run)
    membership: Dict[str, object] = field(default_factory=dict)
    #: cycles the coordinator spent blocked on ciphertext movement
    #: (0 with no interconnect attached, and on the ideal fabric)
    network_cycles: int = 0
    #: lifetime interconnect stats ({} with no interconnect attached)
    network: Dict[str, object] = field(default_factory=dict)

    @property
    def dropped(self) -> int:
        """Shards with no terminal outcome — the invariant is zero."""
        return self.requests * self.shards_per_request - self.shard_executions

    @property
    def compute_makespan_cycles(self) -> int:
        """Busiest compute resource: slowest node or the CPU lane."""
        return max(
            list(self.per_node_busy_cycles.values())
            + [self.cpu_fallback_cycles],
            default=0,
        )

    @property
    def makespan_cycles(self) -> int:
        """Compute makespan plus coordinator-serialized network cycles.

        Scatter/gather drains block the coordinator between compute
        phases, so network time adds to — never hides under — the
        busiest node.  With ``topology=None`` or ``"ideal"`` this equals
        the historical compute-only makespan exactly.
        """
        return self.compute_makespan_cycles + self.network_cycles

    @property
    def goodput_sim_rps(self) -> float:
        """Requests retired per simulated second on the device clock."""
        if self.makespan_cycles == 0 or self.requests == 0:
            return 0.0
        return self.requests / (self.makespan_cycles / self.clock_hz)

    @property
    def speedup_vs_single_node(self) -> float:
        """Measured makespan vs the cost model's one-node serial bound."""
        if self.makespan_cycles == 0:
            return 0.0
        return self.estimated_single_node_cycles / self.makespan_cycles

    def to_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "rows": self.rows,
            "cols": self.cols,
            "nodes": self.nodes,
            "replication": self.replication,
            "shards_per_request": self.shards_per_request,
            "shard_executions": self.shard_executions,
            "shard_retries": self.shard_retries,
            "rebalance_events": self.rebalance_events,
            "degraded_shards": self.degraded_shards,
            "dropped": self.dropped,
            "per_node_busy_cycles": {
                str(nid): cycles
                for nid, cycles in sorted(self.per_node_busy_cycles.items())
            },
            "cpu_fallback_cycles": self.cpu_fallback_cycles,
            "compute_makespan_cycles": self.compute_makespan_cycles,
            "network_cycles": self.network_cycles,
            "makespan_cycles": self.makespan_cycles,
            "goodput_sim_rps": self.goodput_sim_rps,
            "estimated_single_node_cycles": self.estimated_single_node_cycles,
            "speedup_vs_single_node": self.speedup_vs_single_node,
            "plan": self.plan,
            "placement": self.placement,
            "membership": self.membership,
            "network": self.network,
        }


class ClusterExecutor:
    """Sharded multi-node HMVP with exact gather and failover.

    Parameters
    ----------
    scheme:
        The HE scheme (keys included; the central pack uses its Galois
        keys exactly as the unsharded engine would).
    matrix:
        Arbitrary ``(rows, cols)`` plaintext matrix — unlike
        :class:`~repro.core.batch.BatchedHmvp`, rows may exceed the ring
        degree (row bands become separate shards, and the gathered packs
        mirror the tiled reference's one-pack-per-ring-rows structure).
    config:
        Policy knobs; see :class:`ClusterConfig`.
    plan / placement:
        Explicit partition plan and shard placement (tests and the CLI
        pass these; both default to the planner's cost-driven choice).
    fault_injectors:
        One per node, overriding the rate-derived defaults (scripted
        hang sequences for deterministic failover tests).
    schedule / autoscaler:
        Elastic membership inputs (:mod:`repro.cluster.membership` /
        :mod:`repro.cluster.autoscaler`).  A schedule's join/leave/kill
        events are consumed *between* requests, indexed by request
        sequence number; the autoscaler turns queue-depth observations
        into extra events.  Either one attaches a
        :class:`ClusterController`; with neither, behavior is exactly
        the static PR-5 cluster.
    """

    def __init__(
        self,
        scheme: BfvScheme,
        matrix: Sequence[Sequence[int]],
        config: Optional[ClusterConfig] = None,
        plan: Optional[PartitionPlan] = None,
        placement: Optional[ShardPlacement] = None,
        cham: Optional[ChamConfig] = None,
        fault_injectors: Optional[Sequence[FaultInjector]] = None,
        schedule: Optional[MembershipSchedule] = None,
        autoscaler: Optional[Autoscaler] = None,
    ) -> None:
        self.scheme = scheme
        self.config = config or ClusterConfig()
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        self.matrix = matrix
        self.rows, self.cols = (int(x) for x in matrix.shape)
        self.cham = cham or cham_default_config()
        ring = scheme.params.n
        limbs = len(scheme.ctx.ct_basis)
        comm: Optional[CommSpec] = None
        if self.config.topology is not None:
            comm = CommSpec(
                kind=self.config.topology,
                bandwidth=self.config.link_bandwidth,
                latency=self.config.link_latency,
                flit_bytes=self.config.flit_bytes,
                buffer_flits=self.config.net_buffer_flits,
                ct_limbs=limbs,
            )
        self.planner = PartitionPlanner(
            ring, engine=self.cham.engine, comm=comm
        )
        if plan is None:
            plan = self.planner.plan(
                self.rows, self.cols, nodes=self.config.nodes
            )
        if (plan.rows, plan.cols) != (self.rows, self.cols):
            raise PartitionError(
                f"plan covers {plan.rows}x{plan.cols}, "
                f"matrix is {self.rows}x{self.cols}"
            )
        if plan.ring_n != ring:
            raise PartitionError(
                f"plan ring degree {plan.ring_n} != scheme ring {ring}"
            )
        self.plan = plan
        costs = self.planner.plan_cost_cycles(plan)
        if placement is None:
            placement = ShardPlacement.place(
                plan,
                nodes=self.config.nodes,
                replication=min(self.config.replication, self.config.nodes),
                shard_costs=costs,
            )
        placement.validate_against(plan)
        self.placement = placement
        self.nodes: Dict[int, ClusterNode] = build_nodes(
            scheme,
            matrix,
            plan,
            placement,
            cham=self.cham,
            fault_injectors=fault_injectors,
            seed=self.config.seed,
            fault_rate=self.config.fault_rate,
            register_flip_rate=self.config.register_flip_rate,
            resets_to_recover=self.config.resets_to_recover,
        )
        #: event-driven interconnect; None keeps comm free (the
        #: historical behavior, and the calibration point the netsim
        #: property suite compares the ideal fabric against)
        self.interconnect: Optional[ClusterInterconnect] = None
        if self.config.topology is not None:
            self.interconnect = ClusterInterconnect(
                self.config.topology,
                placement.node_ids,
                bandwidth=self.config.link_bandwidth,
                latency=self.config.link_latency,
                flit_bytes=self.config.flit_bytes,
                buffer_flits=self.config.net_buffer_flits,
            )
        #: exact gather payload per shard: the partial is one (L, rows)
        #: b plus one (L, rows, n) a, both uint64
        self._shard_gather_bytes: Dict[int, int] = {
            s.shard_id: limbs * s.rows * (1 + ring) * 8 for s in plan.shards
        }
        #: per-request hoisted-tile bytes by shard (set at scatter time)
        self._current_scatter_bytes: Dict[int, int] = {}
        self._cpu_model = CpuCostModel()
        self._single_node_cycles_per_request = sum(costs)
        #: shard_id -> cycle cost (the membership layer balances by these)
        self.shard_costs: Dict[int, int] = self.planner.cost_by_shard(plan)
        #: busy-cycle ledger of nodes that left or died (node_id -> cycles)
        self.departed_busy_cycles: Dict[int, int] = {}
        self.controller: Optional[ClusterController] = None
        if schedule is not None or autoscaler is not None:
            self.controller = ClusterController(
                self, schedule=schedule, autoscaler=autoscaler
            )
        tile_rows = self.config.tile_rows or ring
        if not 1 <= tile_rows <= ring:
            raise PartitionError(
                f"tile_rows {tile_rows} must be in 1..ring degree {ring}"
            )
        self._pack_tile_rows = tile_rows
        # lifetime counters (report() snapshots these)
        self.requests_served = 0
        self.shard_executions = 0
        self.shard_retries = 0
        self.rebalance_events = 0
        self.degraded_shards = 0
        self.cpu_fallback_cycles = 0
        self._lanes_named = False
        obs.set_gauge("cluster.nodes", self.config.nodes)

    # -- request plumbing --------------------------------------------------

    def encrypt_vector(self, v: Sequence[int]) -> List[RlweCiphertext]:
        """One augmented ciphertext per ring-wide tile of the vector."""
        v = np.asarray(v)
        if v.shape[0] != self.cols:
            raise ValueError(
                f"vector length {v.shape[0]} != matrix cols {self.cols}"
            )
        ring = self.scheme.params.n
        return [
            self.scheme.encrypt_vector(v[start : start + ring])
            for start in range(0, self.cols, ring)
        ]

    def _normalize(
        self, request: Union[RlweCiphertext, Sequence[RlweCiphertext]]
    ) -> List[RlweCiphertext]:
        tiles = (
            [request] if isinstance(request, RlweCiphertext) else list(request)
        )
        if len(tiles) != self.plan.col_tiles:
            raise ValueError(
                f"need {self.plan.col_tiles} vector tiles for "
                f"{self.cols} columns, got {len(tiles)}"
            )
        return tiles

    # -- offload simulation ------------------------------------------------

    def _attempt_offload(self, node: ClusterNode, shard: Shard) -> int:
        """One offload attempt; returns device cycles or raises."""
        runtime = node.runtime
        runtime.load_register_checked(
            _REGISTER_BASE + (shard.shard_id % 256),
            (shard.rows << 16) | (shard.shard_id & 0xFFFF),
        )
        job_id = runtime.submit(
            rows=shard.rows,
            col_tiles=shard.col_tiles(self.plan.ring_n),
        )
        state = runtime.poll_once(job_id)
        if state is not JobState.DONE:
            raise DeviceHangError(
                f"shard {shard.shard_id} attempt failed on node "
                f"{node.node_id}"
            )
        return runtime.jobs[job_id].cycles

    def _serve_shard(
        self, shard: Shard, deadline_budget_ms: float
    ) -> ShardOutcome:
        """Offload with replica failover, then CPU degrade; never drops."""
        hosted = self.placement.nodes_for(shard.shard_id)
        primary = hosted[0]
        col_tiles = shard.col_tiles(self.plan.ring_n)
        clock = self.cham.clock_hz
        spent_ms = 0.0
        attempts = 0
        # the first attempt's span id: every reroute/degrade span links
        # back to it, so the exported trace connects the failover chain
        first_attempt_sid = ""
        for _pass in range(self.config.max_retries + 1):
            for node_id in hosted:
                node = self.nodes[node_id]
                est_cycles = node.runtime.estimate_cycles(
                    shard.rows, col_tiles
                )
                if self.interconnect is not None:
                    # an attempt on this node also has to move the
                    # ciphertext tiles in and the LWE partial back out
                    est_cycles += self.interconnect.estimate_transfer_cycles(
                        COORDINATOR,
                        node_id,
                        self._current_scatter_bytes.get(shard.shard_id, 0),
                    ) + self.interconnect.estimate_transfer_cycles(
                        node_id,
                        COORDINATOR,
                        self._shard_gather_bytes[shard.shard_id],
                    )
                est_ms = 1e3 * est_cycles / clock
                if spent_ms + est_ms > deadline_budget_ms:
                    # the next attempt cannot finish inside the request
                    # deadline on the simulated clock: stop failing over
                    break
                attempts += 1
                with obs.span(
                    "cluster.shard.attempt",
                    pid=node_id + 1,
                    links=(first_attempt_sid,) if first_attempt_sid else None,
                    shard=shard.shard_id,
                    node=node_id,
                    attempt=attempts,
                ) as attempt_span:
                    if not first_attempt_sid:
                        first_attempt_sid = attempt_span.span_id
                    try:
                        cycles = self._attempt_offload(node, shard)
                    except (DeviceHangError, RegisterLoadError):
                        attempt_span.set(outcome="hang")
                        spent_ms += est_ms
                        self.shard_retries += 1
                        obs.inc("cluster.shard_retries")
                        continue
                    node.shards_served += 1
                    rerouted = node_id != primary
                    if rerouted:
                        self.rebalance_events += 1
                        obs.inc("cluster.rebalance_events")
                    attempt_span.set(outcome="ok", rerouted=rerouted)
                    return ShardOutcome(
                        shard_id=shard.shard_id,
                        node_id=node_id,
                        attempts=attempts,
                        rerouted=rerouted,
                        cycles=cycles,
                    )
            else:
                continue
            break  # deadline budget exhausted
        with obs.span(
            "cluster.shard.degrade",
            links=(first_attempt_sid,) if first_attempt_sid else None,
            shard=shard.shard_id,
            attempts=attempts,
        ):
            cpu_s = self._cpu_model.hmvp_s(
                shard.rows, shard.cols, ring_n=self.plan.ring_n
            )
            cycles = int(cpu_s * clock)
        self.degraded_shards += 1
        self.cpu_fallback_cycles += cycles
        obs.inc("cluster.degraded")
        return ShardOutcome(
            shard_id=shard.shard_id,
            node_id=None,
            attempts=attempts,
            rerouted=True,
            degraded=True,
            cycles=cycles,
        )

    # -- network charging --------------------------------------------------
    #
    # The interconnect changes *pricing only*: every method below is a
    # no-op without a topology, and none of them touches ciphertext
    # values or RNG streams — the differential suite pins that results
    # stay per-limb bit-identical across fabrics.

    def _charge_scatter(
        self, hoisted: Sequence[Tuple[np.ndarray, ...]]
    ) -> None:
        """Move each hoisted ciphertext tile to the shards' primaries.

        A (node, tile) pair is charged once even when several shards on
        that node share the tile — the payload is the actual hoisted
        ndarray bytes, flit-quantized by the simulator.
        """
        ring = self.plan.ring_n
        tile_bytes = [sum(int(a.nbytes) for a in h) for h in hoisted]
        self._current_scatter_bytes = {
            s.shard_id: sum(
                tile_bytes[t] for t in range(*s.tile_range(ring))
            )
            for s in self.plan.shards
        }
        if self.interconnect is None:
            return
        with obs.span("cluster.net.scatter") as net_span:
            self.interconnect.begin_phase("scatter")
            sent: Set[Tuple[int, int]] = set()
            for shard in self.plan.shards:
                primary = self.placement.nodes_for(shard.shard_id)[0]
                t0, t1 = shard.tile_range(ring)
                for t in range(t0, t1):
                    if (primary, t) in sent:
                        continue
                    sent.add((primary, t))
                    self.interconnect.inject(
                        COORDINATOR, primary, tile_bytes[t], tag=f"tile{t}"
                    )
            cycles = self.interconnect.drain("scatter")
            net_span.set(cycles=cycles, messages=len(sent))
            obs.inc("cluster.net.cycles", cycles)

    def _charge_failover(self, outcomes: Sequence[ShardOutcome]) -> None:
        """Re-send ciphertext tiles to replicas that took over a shard."""
        if self.interconnect is None:
            return
        resends = [
            o
            for o in outcomes
            if o.rerouted and not o.degraded and o.node_id is not None
        ]
        if not resends:
            return
        with obs.span("cluster.net.failover") as net_span:
            self.interconnect.begin_phase("failover")
            for o in resends:
                self.interconnect.inject(
                    COORDINATOR,
                    o.node_id,
                    self._current_scatter_bytes.get(o.shard_id, 0),
                    tag=f"re{o.shard_id}",
                )
            cycles = self.interconnect.drain("failover")
            net_span.set(cycles=cycles, messages=len(resends))
            obs.inc("cluster.net.cycles", cycles)

    def _charge_gather(
        self,
        outcomes: Sequence[ShardOutcome],
        partials: Dict[int, "Tuple[np.ndarray, np.ndarray]"],
    ) -> None:
        """Ship each shard's LWE partial back, sized from its arrays.

        CPU-degraded shards computed on the coordinator's fallback lane,
        so they have nothing to ship.
        """
        if self.interconnect is None:
            return
        with obs.span("cluster.net.gather") as net_span:
            self.interconnect.begin_phase("gather")
            messages = 0
            for o in outcomes:
                if o.degraded or o.node_id is None:
                    continue
                b, a = partials[o.shard_id]
                self.interconnect.inject(
                    o.node_id,
                    COORDINATOR,
                    int(b.nbytes) + int(a.nbytes),
                    tag=f"g{o.shard_id}",
                )
                messages += 1
            cycles = self.interconnect.drain("gather")
            net_span.set(cycles=cycles, messages=messages)
            obs.inc("cluster.net.cycles", cycles)
            obs.set_gauge(
                "cluster.net.total_cycles", self.interconnect.total_cycles
            )

    def _net_set_nodes(self) -> None:
        """Rewire the fabric after membership churn (controller hook)."""
        if self.interconnect is not None:
            self.interconnect.set_nodes(sorted(self.nodes))

    def _net_transfer(
        self, src: Optional[int], dst: int, nbytes: int, tag: str = ""
    ) -> None:
        """Charge replica-sync migration traffic (controller hook)."""
        if self.interconnect is None or src is None:
            return
        cycles = self.interconnect.transfer(
            src, dst, nbytes, phase="replica_sync", tag=tag
        )
        obs.inc("cluster.net.cycles", cycles)

    # -- the exact data path ----------------------------------------------

    def _request_op_count(self) -> HmvpOpCount:
        """Exact op mix of one gathered request (matches the unsharded
        engine: the shard/merge structure changes *where* additions run,
        never how many)."""
        ring = self.plan.ring_n
        limbs = len(self.scheme.ctx.ct_basis)
        limbs_aug = limbs + 1
        ops = HmvpOpCount()
        for col_start in range(0, self.cols, ring):
            width = min(ring, self.cols - col_start)
            ops = ops + HmvpOpCount.for_cached_dot_products(
                self.rows, width, limbs_aug
            )
        if self.plan.col_tiles > 1:
            ops.lwe_additions += self.rows * (self.plan.col_tiles - 1)
        for row_start in range(0, self.rows, self._pack_tile_rows):
            count = min(self._pack_tile_rows, self.rows - row_start)
            ops = ops + HmvpOpCount.for_pack(count, limbs, limbs_aug)
        return ops

    def _gather(
        self,
        partials: Dict[int, "Tuple[np.ndarray, np.ndarray]"],
    ) -> HmvpResult:
        """Merge shard partials exactly and pack centrally.

        Column shards of one row band merge with per-limb modular
        addition; row bands concatenate in row order.  Both are exact,
        so the packed output is bit-identical to the unsharded path.
        """
        ctx = self.scheme.ctx
        ct_basis = ctx.ct_basis
        band_b: List[np.ndarray] = []
        band_a: List[np.ndarray] = []
        for rb in range(self.plan.row_bands):
            acc_b: Optional[np.ndarray] = None
            acc_a: Optional[np.ndarray] = None
            for cb in range(self.plan.col_bands):
                shard = self.plan.shard_at(rb, cb)
                b, a = partials[shard.shard_id]
                if acc_b is None:
                    acc_b, acc_a = b, a
                else:
                    acc_b = np.stack(
                        [
                            modadd_vec(acc_b[i], b[i], q)
                            for i, q in enumerate(ct_basis)
                        ]
                    )
                    acc_a = np.stack(
                        [
                            modadd_vec(acc_a[i], a[i], q)
                            for i, q in enumerate(ct_basis)
                        ]
                    )
            band_b.append(acc_b)
            band_a.append(acc_a)
        full_b = np.concatenate(band_b, axis=1)
        full_a = np.concatenate(band_a, axis=1)
        packs = []
        with obs.span("cluster.gather", rows=self.rows):
            for start in range(0, self.rows, self._pack_tile_rows):
                stop = min(start + self._pack_tile_rows, self.rows)
                packs.append(
                    pack_stacked_lwes(
                        ctx,
                        ct_basis,
                        np.ascontiguousarray(full_b[:, start:stop]),
                        np.ascontiguousarray(full_a[:, start:stop]),
                        self.scheme.galois_keys,
                    )
                )
        return HmvpResult(
            packs=packs,
            rows=self.rows,
            cols=self.cols,
            ops=self._request_op_count(),
        )

    def execute(
        self,
        request: Union[RlweCiphertext, Sequence[RlweCiphertext]],
        deadline_ms: Optional[float] = None,
    ) -> HmvpResult:
        """Serve one encrypted request across the cluster.

        ``request`` is a single augmented ciphertext (single-tile
        matrices) or one ciphertext per ring-wide column tile.
        """
        ct_tiles = self._normalize(request)
        budget_ms = (
            deadline_ms if deadline_ms is not None else self.config.deadline_ms
        )
        # membership events indexed by this request's sequence number fire
        # before it is served; placement is re-validated after every event
        if self.controller is not None:
            self.controller.advance(self.requests_served)
        obs.inc("cluster.requests")
        if obs.TRACER.enabled and not self._lanes_named:
            obs.TRACER.name_process(0, "cluster.coordinator")
            for node in self.nodes.values():
                obs.TRACER.name_process(node.node_id + 1, f"node{node.node_id}")
            self._lanes_named = True
        # each request is one trace: reuse the ambient context when a
        # caller (the serving layer) already minted one, else mint here
        req_ctx = obs.current_context()
        if req_ctx is None and obs.TRACER.enabled:
            req_ctx = obs.TRACER.new_trace()
        with obs.span(
            "cluster.request", ctx=req_ctx, shards=len(self.plan.shards)
        ):
            # hoist once per ciphertext tile; every shard touching that
            # tile reuses the transform (the scatter payload is small)
            with obs.span("cluster.scatter", tiles=len(ct_tiles)):
                first = self.plan.shards[0].shard_id
                host = self.nodes[self.placement.nodes_for(first)[0]]
                hoisted = [host.engines[first].hoist(ct) for ct in ct_tiles]
            self._charge_scatter(hoisted)
            partials: Dict[int, "Tuple[np.ndarray, np.ndarray]"] = {}
            outcomes: List[ShardOutcome] = []
            for shard in self.plan.shards:
                outcome = self._serve_shard(shard, budget_ms)
                outcomes.append(outcome)
                self.shard_executions += 1
                obs.inc("cluster.shard_executions")
                serving_node = (
                    outcome.node_id
                    if outcome.node_id is not None
                    else self.placement.nodes_for(shard.shard_id)[0]
                )
                engine = self.nodes[serving_node].engines[shard.shard_id]
                t0, t1 = shard.tile_range(self.plan.ring_n)
                # the functional kernels run "on" the serving node: pin
                # their spans (and the kernels' children, which inherit
                # the lane through the context) to that node's pid lane
                with obs.span(
                    "cluster.shard.compute",
                    pid=serving_node + 1,
                    shard=shard.shard_id,
                    node=serving_node,
                    degraded=outcome.degraded,
                ):
                    partial_tiles = engine.multiply_partial(
                        hoisted_tiles=hoisted[t0:t1]
                    )
                partials[shard.shard_id] = partial_tiles[0]
            self._charge_failover(outcomes)
            self._charge_gather(outcomes, partials)
            result = self._gather(partials)
        self.requests_served += 1
        return result

    def execute_batch(
        self,
        requests: Sequence[Union[RlweCiphertext, Sequence[RlweCiphertext]]],
        deadline_ms: Optional[float] = None,
    ) -> List[HmvpResult]:
        """Serve a request list; every request reaches a terminal result.

        The remaining backlog feeds the ``cluster.queue.depth`` gauge and
        (when an autoscaler is attached) one observation per request —
        sustained backlog scales the pool up, sustained idle scales it
        down, all as deterministic membership events.
        """
        results = []
        for i, req in enumerate(requests):
            backlog = len(requests) - i - 1
            obs.set_gauge("cluster.queue.depth", backlog)
            if self.controller is not None:
                self.controller.maybe_autoscale(self.requests_served, backlog)
            results.append(self.execute(req, deadline_ms=deadline_ms))
        return results

    # -- reporting ---------------------------------------------------------

    def report(self) -> ClusterReport:
        busy = dict(self.departed_busy_cycles)
        for nid, node in self.nodes.items():
            busy[nid] = busy.get(nid, 0) + node.busy_cycles
        return ClusterReport(
            requests=self.requests_served,
            rows=self.rows,
            cols=self.cols,
            nodes=len(self.nodes),
            replication=self.placement.replication,
            shards_per_request=len(self.plan.shards),
            shard_executions=self.shard_executions,
            shard_retries=self.shard_retries,
            rebalance_events=self.rebalance_events,
            degraded_shards=self.degraded_shards,
            per_node_busy_cycles=busy,
            cpu_fallback_cycles=self.cpu_fallback_cycles,
            clock_hz=self.cham.clock_hz,
            estimated_single_node_cycles=(
                self._single_node_cycles_per_request * self.requests_served
            ),
            plan=self.plan.to_dict(),
            placement=self.placement.to_dict(),
            membership=(
                self.controller.to_dict()
                if self.controller is not None
                else {}
            ),
            network_cycles=(
                self.interconnect.total_cycles
                if self.interconnect is not None
                else 0
            ),
            network=(
                self.interconnect.network_block()
                if self.interconnect is not None
                else {}
            ),
        )
