"""Pipeline trace capture and ASCII rendering (the Fig. 1b view).

:func:`capture_trace` runs one macro-pipeline job with event recording
on; :func:`render_gantt` folds the events into a fixed-width ASCII
timeline — one lane for the dot-product stages, one per pack-tree level
— so the overlap/preemption structure the paper draws in Fig. 1b can be
eyeballed in a terminal (and asserted in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .arch import EngineConfig
from .pipeline import MacroPipeline, PipelineStats

__all__ = [
    "TraceEvent",
    "PipelineTrace",
    "capture_trace",
    "render_gantt",
    "chrome_trace_events",
]


@dataclass(frozen=True)
class TraceEvent:
    cycle: int
    kind: str  # "dot" | "pack"
    detail: int  # row index, or pack-tree level


@dataclass
class PipelineTrace:
    stats: PipelineStats
    events: List[TraceEvent]
    #: the engine the trace was captured on; lane durations in
    #: :func:`render_gantt` / :func:`chrome_trace_events` come from here
    #: (``None`` falls back to the default engine, for old pickles/tests)
    engine: Optional[EngineConfig] = None

    @property
    def dot_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "dot"]

    @property
    def pack_events(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "pack"]

    def max_pack_level(self) -> int:
        return max((e.detail for e in self.pack_events), default=0)

    def first_overlap_cycle(self) -> Optional[int]:
        """First pack start while dot products are still arriving —
        the pipelining the macro-architecture exists for."""
        if not self.pack_events or not self.dot_events:
            return None
        last_dot = self.dot_events[-1].cycle
        for e in self.pack_events:
            if e.cycle < last_dot:
                return e.cycle
        return None


def capture_trace(
    engine: EngineConfig, rows: int, col_tiles: int = 1
) -> PipelineTrace:
    """Run one job with tracing enabled."""
    raw: List[Tuple[int, str, int]] = []
    stats = MacroPipeline(engine).simulate_hmvp(rows, col_tiles, trace=raw)
    events = [TraceEvent(*e) for e in sorted(raw)]
    return PipelineTrace(stats=stats, events=events, engine=engine)


def render_gantt(trace: PipelineTrace, width: int = 72) -> str:
    """ASCII timeline: '#' marks activity in each lane's time bucket."""
    total = max(trace.stats.total_cycles, 1)
    scale = total / width

    def lane(events: List[TraceEvent], duration: int) -> str:
        cells = [" "] * width
        for e in events:
            # an event retiring exactly at total_cycles still gets a cell
            start = min(int(e.cycle / scale), width - 1)
            end = min(int((e.cycle + duration) / scale) + 1, width)
            for i in range(start, end):
                if 0 <= i < width:
                    cells[i] = "#"
        return "".join(cells)

    # durations from the engine the trace actually ran on
    pipe = MacroPipeline(trace.engine if trace.engine is not None else EngineConfig())
    dot_dur = trace.stats.total_cycles // max(len(trace.dot_events), 1)
    dot_dur = min(dot_dur, pipe.dot_interval)
    lines = [
        f"cycles 0 .. {trace.stats.total_cycles:,} "
        f"({trace.stats.rows} rows, {trace.stats.reductions} reductions)"
    ]
    lines.append(f"dot    |{lane(trace.dot_events, dot_dur)}|")
    for level in range(1, trace.max_pack_level() + 1):
        events = [e for e in trace.pack_events if e.detail == level]
        lines.append(f"pack L{level}|{lane(events, pipe.pack_interval)}|")
    return "\n".join(lines)


def chrome_trace_events(trace: PipelineTrace) -> List[Dict[str, Any]]:
    """The trace as Chrome trace-event dicts (1 cycle rendered as 1 µs).

    Track 0 is the dot-product lane (stages 1-4); track ``k`` holds the
    level-``k`` PACKTWOLWES reductions, so chrome://tracing / Perfetto
    shows the same lanes as :func:`render_gantt`, zoomable.  Wrap the
    returned list as ``{"traceEvents": [...]}`` before writing to disk
    (the CLI's ``trace --trace-out`` does this).
    """
    pipe = MacroPipeline(trace.engine if trace.engine is not None else EngineConfig())
    events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "dot products (stages 1-4)"},
        }
    ]
    for level in range(1, trace.max_pack_level() + 1):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": level,
                "args": {"name": f"pack level {level} (stages 5-9)"},
            }
        )
    for e in trace.events:
        if e.kind == "dot":
            events.append(
                {
                    "name": f"DOTPRODUCT row {e.detail}",
                    "cat": "pipeline",
                    "ph": "X",
                    "ts": e.cycle,
                    "dur": pipe.dot_interval,
                    "pid": 0,
                    "tid": 0,
                    "args": {"row": e.detail, "cycle": e.cycle},
                }
            )
        else:
            events.append(
                {
                    "name": f"PACKTWOLWES L{e.detail}",
                    "cat": "pipeline",
                    "ph": "X",
                    "ts": e.cycle,
                    "dur": pipe.pack_interval,
                    "pid": 0,
                    "tid": e.detail,
                    "args": {"level": e.detail, "cycle": e.cycle},
                }
            )
    return events
