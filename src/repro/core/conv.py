"""2-D and 3-D convolutions via coefficient encoding (Section II-E, [18]).

The paper notes that Alg. 1 "can be extended to other linear functions,
such as 2-D and 3-D convolutions through encoding the original tensors in
similar ways" — the Cheetah trick:

* the input tensor is laid out as polynomial coefficients in row-major
  order (channel-major for 3-D);
* the kernel is laid out *reversed*, so that the polynomial product
  places each valid-convolution output at a known coefficient;
* parasitic cross terms cannot reach valid output positions as long as
  the whole tensor fits in one ring element (``C*H*W <= N``) — larger
  inputs fall back to tiling.

One homomorphic multiplication therefore computes an entire valid
correlation ("conv" in the ML sense).  Output positions for the 2-D case:
``O[i, j] -> coefficient (i + kh - 1) * W + (j + kw - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..he.bfv import BfvScheme
from ..he.encoder import Plaintext
from ..he.rlwe import RlweCiphertext

__all__ = [
    "im2col",
    "conv2d_via_hmvp",
    "conv2d_reference",
    "conv3d_reference",
    "Conv2dEncoder",
    "Conv3dEncoder",
    "homomorphic_conv2d",
    "homomorphic_conv3d",
]


def conv2d_reference(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Valid cross-correlation, the cleartext oracle (object ints)."""
    image = np.asarray(image, dtype=object)
    kernel = np.asarray(kernel, dtype=object)
    h, w = image.shape
    kh, kw = kernel.shape
    oh, ow = h - kh + 1, w - kw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("kernel larger than image")
    out = np.zeros((oh, ow), dtype=object)
    for i in range(oh):
        for j in range(ow):
            out[i, j] = int((image[i : i + kh, j : j + kw] * kernel).sum())
    return out


def conv3d_reference(tensor: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Valid correlation summed over the channel axis (single output map)."""
    tensor = np.asarray(tensor, dtype=object)
    kernel = np.asarray(kernel, dtype=object)
    if tensor.shape[0] != kernel.shape[0]:
        raise ValueError("channel mismatch")
    acc = None
    for c in range(tensor.shape[0]):
        part = conv2d_reference(tensor[c], kernel[c])
        acc = part if acc is None else acc + part
    return acc


@dataclass
class Conv2dEncoder:
    """Coefficient layout for one 2-D convolution instance."""

    scheme: BfvScheme
    h: int
    w: int
    kh: int
    kw: int

    def __post_init__(self) -> None:
        if self.h * self.w > self.scheme.params.n:
            raise ValueError(
                f"image {self.h}x{self.w} exceeds ring degree "
                f"{self.scheme.params.n}; tile the input"
            )
        if self.kh > self.h or self.kw > self.w:
            raise ValueError("kernel larger than image")

    @property
    def out_shape(self) -> "tuple[int, int]":
        return (self.h - self.kh + 1, self.w - self.kw + 1)

    def encode_image(self, image: np.ndarray) -> Plaintext:
        """Row-major image layout: ``X[i][j] -> X^(i*W + j)``."""
        image = np.asarray(image)
        if image.shape != (self.h, self.w):
            raise ValueError(f"image shape {image.shape} != ({self.h}, {self.w})")
        return self.scheme.encoder.encode_coeffs(image.reshape(-1))

    def encrypt_image(self, image: np.ndarray) -> RlweCiphertext:
        return self.scheme.encrypt_plaintext(self.encode_image(image), augmented=True)

    def encode_kernel(self, kernel: np.ndarray) -> Plaintext:
        """Reversed kernel layout: ``K[a][b] -> X^((kh-1-a)*W + (kw-1-b))``."""
        kernel = np.asarray(kernel)
        if kernel.shape != (self.kh, self.kw):
            raise ValueError(f"kernel shape {kernel.shape} != ({self.kh}, {self.kw})")
        coeffs = np.zeros(self.scheme.params.n, dtype=object)
        for a in range(self.kh):
            for b in range(self.kw):
                coeffs[(self.kh - 1 - a) * self.w + (self.kw - 1 - b)] = int(
                    kernel[a, b]
                )
        return self.scheme.encoder.encode_coeffs(coeffs)

    def output_positions(self) -> np.ndarray:
        oh, ow = self.out_shape
        pos = np.empty((oh, ow), dtype=np.int64)
        for i in range(oh):
            for j in range(ow):
                pos[i, j] = (i + self.kh - 1) * self.w + (j + self.kw - 1)
        return pos

    def decode_output(self, pt: Plaintext) -> np.ndarray:
        centered = pt.centered().astype(object)
        pos = self.output_positions()
        return centered[pos]


def homomorphic_conv2d(
    encoder: Conv2dEncoder, ct_image: RlweCiphertext, kernel: np.ndarray
) -> RlweCiphertext:
    """One DOTPRODUCT pipeline pass computing a full 2-D convolution."""
    pt_kernel = encoder.encode_kernel(kernel)
    prod = ct_image.multiply_plain(pt_kernel)
    return prod.rescale() if prod.is_augmented else prod


@dataclass
class Conv3dEncoder:
    """Coefficient layout for channel-summed 3-D convolution."""

    scheme: BfvScheme
    c: int
    h: int
    w: int
    kh: int
    kw: int

    def __post_init__(self) -> None:
        if self.c * self.h * self.w > self.scheme.params.n:
            raise ValueError("tensor exceeds ring degree; tile the input")

    @property
    def plane(self) -> int:
        return self.h * self.w

    @property
    def out_shape(self) -> "tuple[int, int]":
        return (self.h - self.kh + 1, self.w - self.kw + 1)

    def encode_tensor(self, tensor: np.ndarray) -> Plaintext:
        """Channel-major layout: ``X[c][i][j] -> X^(c*H*W + i*W + j)``."""
        tensor = np.asarray(tensor)
        if tensor.shape != (self.c, self.h, self.w):
            raise ValueError("tensor shape mismatch")
        return self.scheme.encoder.encode_coeffs(tensor.reshape(-1))

    def encrypt_tensor(self, tensor: np.ndarray) -> RlweCiphertext:
        return self.scheme.encrypt_plaintext(
            self.encode_tensor(tensor), augmented=True
        )

    def encode_kernel(self, kernel: np.ndarray) -> Plaintext:
        """Channel- and spatially-reversed kernel so channel sums align."""
        kernel = np.asarray(kernel)
        if kernel.shape != (self.c, self.kh, self.kw):
            raise ValueError("kernel shape mismatch")
        coeffs = np.zeros(self.scheme.params.n, dtype=object)
        for ch in range(self.c):
            base = (self.c - 1 - ch) * self.plane
            for a in range(self.kh):
                for b in range(self.kw):
                    coeffs[
                        base + (self.kh - 1 - a) * self.w + (self.kw - 1 - b)
                    ] = int(kernel[ch, a, b])
        return self.scheme.encoder.encode_coeffs(coeffs)

    def output_positions(self) -> np.ndarray:
        oh, ow = self.out_shape
        base = (self.c - 1) * self.plane
        pos = np.empty((oh, ow), dtype=np.int64)
        for i in range(oh):
            for j in range(ow):
                pos[i, j] = base + (i + self.kh - 1) * self.w + (j + self.kw - 1)
        return pos

    def decode_output(self, pt: Plaintext) -> np.ndarray:
        centered = pt.centered().astype(object)
        return centered[self.output_positions()]


def homomorphic_conv3d(
    encoder: Conv3dEncoder, ct_tensor: RlweCiphertext, kernel: np.ndarray
) -> RlweCiphertext:
    """Channel-summed 3-D convolution in one homomorphic multiplication."""
    pt_kernel = encoder.encode_kernel(kernel)
    prod = ct_tensor.multiply_plain(pt_kernel)
    return prod.rescale() if prod.is_augmented else prod


def im2col(image: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """Lower a valid 2-D convolution to a matrix: each row is one
    receptive field, so ``conv(image, K) == im2col(image) @ K.reshape(-1)``.

    This is the generic lowering every BLAS-backed framework uses; here
    it cross-checks the coefficient-packed convolution (one ciphertext
    multiplication) against the same result computed as an HMVP — two
    independent homomorphic evaluation strategies for the same layer.
    """
    image = np.asarray(image)
    h, w = image.shape
    oh, ow = h - kh + 1, w - kw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError("kernel larger than image")
    rows = np.empty((oh * ow, kh * kw), dtype=image.dtype)
    idx = 0
    for i in range(oh):
        for j in range(ow):
            rows[idx] = image[i : i + kh, j : j + kw].reshape(-1)
            idx += 1
    return rows


def conv2d_via_hmvp(
    scheme: BfvScheme, image: np.ndarray, kernel: np.ndarray
) -> np.ndarray:
    """Evaluate a convolution as an encrypted HMVP over the im2col matrix.

    The *kernel* is encrypted (one short ciphertext) and the im2col
    matrix of the public image plays the plaintext matrix — the dual of
    :func:`homomorphic_conv2d`, exercising Alg. 1 instead of the packed
    single-multiplication trick.  Returns the decrypted output map.
    """
    from .hmvp import TiledHmvp

    kernel = np.asarray(kernel)
    kh, kw = kernel.shape
    matrix = im2col(np.asarray(image), kh, kw)
    tiler = TiledHmvp(scheme)
    flat = tiler(matrix, kernel.reshape(-1))
    oh = image.shape[0] - kh + 1
    ow = image.shape[1] - kw + 1
    return np.asarray(flat, dtype=object).reshape(oh, ow)
