"""CHAM reproduction: a customized homomorphic encryption accelerator for
fast matrix-vector product (Ren et al., DAC 2023), as a Python library.

The package is layered:

* :mod:`repro.math` — modular arithmetic, gold-model and constant-geometry
  NTTs, ring polynomials, RNS;
* :mod:`repro.he` — the RNS-BFV scheme with the paper's exact moduli,
  LWE/RLWE conversion and PACKLWES (plus the Paillier baseline);
* :mod:`repro.core` — coefficient-encoded HMVP (Alg. 1), tiling,
  convolutions, and the baseline encodings it is compared against;
* :mod:`repro.hw` — cycle-level simulation of the CHAM FPGA (NTT
  datapath, macro-pipeline, resources, roofline, DSE, heterogeneous
  system, RAS runtime) plus calibrated CPU/GPU performance models;
* :mod:`repro.apps` — HeteroLR, Beaver triple generation, private
  inference;
* :mod:`repro.obs` — unified observability: metrics registry (counters,
  gauges, histograms) and span tracer with JSONL / Chrome-trace export;
* :mod:`repro.analysis` — HE-aware static analysis: AST lint rules that
  machine-check the paper's arithmetic contracts (overflow-safe modular
  products, dtype discipline, seeded randomness, non-blocking serving).

Quickstart::

    from repro.he import BfvScheme, cham_params
    from repro.core import TiledHmvp

    scheme = BfvScheme(cham_params(), seed=0, max_pack=4096)
    tiler = TiledHmvp(scheme)
    result = tiler(matrix, vector)   # encrypt -> Alg. 1 -> decrypt
"""

__version__ = "1.0.0"

from . import analysis, apps, core, he, hw, math, obs

__all__ = [
    "analysis",
    "apps",
    "core",
    "he",
    "hw",
    "math",
    "obs",
    "__version__",
]
