"""Noise measurement and analytical estimates.

Two views of ciphertext noise are exposed:

* :func:`absolute_noise_bits` — ``log2`` of the largest centered residual
  ``|phase - Δ m|``; this is the unit the paper uses when it says rescale
  reduces the multiplication noise "from 30 bit to 26 bit" (Section III-A).
* :func:`invariant_noise_budget` — SEAL-compatible bits of budget left
  before decryption fails: ``-log2(2 * ||t * phase / Q - m||)``.

The :class:`NoiseModel` gives closed-form *a-priori* estimates per
operation so the design-space exploration and the noise benchmark can be
run without decrypting anything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs
from .context import CheContext
from .keys import SecretKey
from .rlwe import RlweCiphertext

__all__ = [
    "absolute_noise_bits",
    "invariant_noise_budget",
    "NoiseModel",
]


def _invariant_residual(
    ctx: CheContext,
    sk: SecretKey,
    ct: RlweCiphertext,
    positions: Optional[Sequence[int]] = None,
) -> Tuple[int, int]:
    """Return ``(max |t*phase - m*M|, M)`` with ``m = round(t*phase/M)``.

    The quantity ``(t*phase - m*M) / M`` is the SEAL-style *invariant
    noise* ν: decryption succeeds iff ``|ν| < 1/2``.  It is scale-agnostic
    — correct regardless of whether the ciphertext carries the exact
    ``M/t`` embedding or a rescaled one.

    ``positions`` restricts the maximum to a coefficient subset.  Packed
    ciphertexts carry meaningful data only in their slot coefficients —
    the rest is the algorithm's garbage, which sits arbitrarily far from
    the message lattice and would drown the measurement.
    """
    phase = ct.phase(sk)
    if positions is not None:
        phase = phase[list(positions)]
    modulus = ct.basis.product
    t = ctx.t
    worst = 0
    for v in phase:
        num = int(v) * t
        m = (2 * num + modulus) // (2 * modulus)
        worst = max(worst, abs(num - m * modulus))
    return worst, modulus


def absolute_noise_bits(
    ctx: CheContext,
    sk: SecretKey,
    ct: RlweCiphertext,
    positions: Optional[Sequence[int]] = None,
) -> float:
    """``log2`` of the equivalent additive error ``|ν| * M / t``.

    This is the unit of the paper's "30 bit → 26 bit" rescale claim: the
    worst-case distance of the phase from the ideal message lattice point,
    expressed on the ciphertext-modulus scale.
    """
    worst, _modulus = _invariant_residual(ctx, sk, ct, positions)
    e_equiv = worst / ctx.t
    bits = math.log2(e_equiv) if e_equiv > 1 else 0.0
    obs.set_gauge("he.noise.abs_bits", bits)
    return bits


def invariant_noise_budget(
    ctx: CheContext,
    sk: SecretKey,
    ct: RlweCiphertext,
    positions: Optional[Sequence[int]] = None,
) -> float:
    """Bits of decryption margin left: ``-log2(2 |ν|)``.

    Positive means decryption succeeds with that many bits to spare;
    zero/negative means failure.
    """
    worst, modulus = _invariant_residual(ctx, sk, ct, positions)
    if worst == 0:
        budget = float(modulus.bit_length())
    else:
        budget = math.log2(modulus) - math.log2(2 * worst)
    obs.set_gauge("he.noise.budget_bits", budget)
    obs.observe("he.noise.budget_bits.hist", budget)
    return budget


def packed_slot_positions(n: int, count: int) -> List[int]:
    """Slot coefficient indices of a PACKLWES result over ``count`` inputs."""
    levels = max(count - 1, 0).bit_length()
    stride = n >> levels
    return [i * stride for i in range(count)]


@dataclass(frozen=True)
class NoiseModel:
    """Closed-form noise estimates (infinity norms, heuristic CLT bounds).

    Every method returns an estimated absolute noise (not bits); callers
    take ``log2``.  ``sigma`` is the error std, ``n`` the ring degree.
    """

    n: int
    sigma: float
    t: int
    q: int
    p: int

    @property
    def secret_l1(self) -> float:
        """Expected l1 norm of a uniform ternary secret (2n/3)."""
        return 2.0 * self.n / 3.0

    def fresh_sym(self) -> float:
        """Fresh symmetric encryption: a single Gaussian sample + rounding."""
        return 6.0 * self.sigma

    def fresh_pk(self) -> float:
        """Public-key encryption: e*u + e1 + e2*s ~ sigma * sqrt(2n)."""
        return 6.0 * self.sigma * math.sqrt(2.0 * self.n)

    def multiply_plain(self, noise_in: float, pt_norm: float) -> float:
        """Plaintext product: noise * ||pt|| aggregated over n coefficients."""
        return noise_in * pt_norm * math.sqrt(self.n)

    def rescale(self, noise_in: float) -> float:
        """Divide by p, add the rounding term (1 + ||s||_1) / 2."""
        return noise_in / self.p + (1.0 + self.secret_l1) / 2.0

    def keyswitch(self, dnum: int, q_max: int) -> float:
        """Additive hybrid key-switch noise: digits * keys error / p."""
        return dnum * q_max * 6.0 * self.sigma * math.sqrt(self.n) / self.p + (
            1.0 + self.secret_l1
        ) / 2.0

    def pack_level(self, noise_in: float, ks_noise: float) -> float:
        """One PACKTWOLWES: doubles the inputs and adds a key-switch."""
        return 2.0 * noise_in + ks_noise

    def pack(self, noise_in: float, levels: int, ks_noise: float) -> float:
        """Full PACKLWES over ``2**levels`` inputs."""
        out = noise_in
        for _ in range(levels):
            out = self.pack_level(out, ks_noise)
        return out

    def budget_bits(self, noise_abs: float) -> float:
        """Invariant budget implied by an absolute noise estimate."""
        if noise_abs <= 0:
            return float(self.q.bit_length())
        return math.log2(self.q) - math.log2(2.0 * self.t * noise_abs)

    @classmethod
    def for_context(cls, ctx: CheContext) -> "NoiseModel":
        params = ctx.params
        return cls(
            n=params.n,
            sigma=params.error_std,
            t=params.plain_modulus,
            q=params.q_product,
            p=params.special_modulus,
        )
