"""Heterogeneous CPU+FPGA execution model (Fig. 1b, Section III-C).

The host pipelines three phases per work chunk — encode (CPU), transfer
(PCIe DMA), compute (a CHAM engine) — across ``host_threads`` threads and
``engines`` engines, with per-thread staging RAMs on the card.  This
module simulates that interleaving with a simple resource-constrained
event loop, exposing the overlap efficiency and the offloaded-compute
fraction the paper quotes (">90% computation offloaded").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List

from .arch import ChamConfig

__all__ = ["ChunkTiming", "HeteroSchedule", "simulate_hetero"]


@dataclass(frozen=True)
class ChunkTiming:
    """Per-chunk phase durations in seconds."""

    encode_s: float
    transfer_s: float
    compute_s: float
    readback_s: float = 0.0


@dataclass
class HeteroSchedule:
    """Result of a heterogeneous schedule simulation."""

    chunks: int
    total_s: float
    cpu_busy_s: float
    fpga_busy_s: float
    serial_s: float

    @property
    def overlap_speedup(self) -> float:
        """Serial execution time divided by pipelined time."""
        return self.serial_s / self.total_s if self.total_s else 1.0

    @property
    def offload_fraction(self) -> float:
        """Fraction of total work time spent on the FPGA (paper: >90%)."""
        denom = self.cpu_busy_s + self.fpga_busy_s
        return self.fpga_busy_s / denom if denom else 0.0

    @property
    def fpga_utilization(self) -> float:
        return self.fpga_busy_s / self.total_s if self.total_s else 0.0


def simulate_hetero(
    cfg: ChamConfig, timings: List[ChunkTiming]
) -> HeteroSchedule:
    """Simulate the Fig. 1b pipeline over a list of chunks.

    Each chunk flows encode -> transfer -> compute -> readback.  Encodes
    share ``host_threads`` CPU threads; host-to-card transfers serialize
    on the inbound DMA direction and readbacks on the outbound direction
    (PCIe is full duplex); computes share ``cfg.engines`` engines.
    """
    if not timings:
        return HeteroSchedule(0, 0.0, 0.0, 0.0, 0.0)

    threads = [0.0] * cfg.host_threads
    engines = [0.0] * cfg.engines
    dma_in_free = 0.0
    dma_out_free = 0.0
    heapq.heapify(threads)
    heapq.heapify(engines)

    cpu_busy = 0.0
    fpga_busy = 0.0
    finish = 0.0
    for chunk in timings:
        t_start = heapq.heappop(threads)
        encode_done = t_start + chunk.encode_s
        heapq.heappush(threads, encode_done)
        cpu_busy += chunk.encode_s

        transfer_start = max(encode_done, dma_in_free)
        transfer_done = transfer_start + chunk.transfer_s
        dma_in_free = transfer_done

        e_start = heapq.heappop(engines)
        compute_start = max(transfer_done, e_start)
        compute_done = compute_start + chunk.compute_s
        heapq.heappush(engines, compute_done)
        fpga_busy += chunk.compute_s

        read_start = max(compute_done, dma_out_free)
        read_done = read_start + chunk.readback_s
        dma_out_free = read_done
        finish = max(finish, read_done)

    serial = sum(
        c.encode_s + c.transfer_s + c.compute_s + c.readback_s for c in timings
    )
    return HeteroSchedule(
        chunks=len(timings),
        total_s=finish,
        cpu_busy_s=cpu_busy,
        fpga_busy_s=fpga_busy,
        serial_s=serial,
    )
