"""CKKS (approximate-arithmetic) scheme over the CHAM rings.

The paper's introduction motivates *multi-scheme* accelerators: "different
HE schemes (i.e., B/FV, CKKS, and TFHE) may compose a hybrid scheme" and
CHAM "supports not only traditional HE operations, but also different
types of ciphertexts and the conversion between them."  This module adds
a CKKS instantiation that runs on exactly the same substrate as the BFV
scheme — same rings, same moduli, same NTT units, same key-switching and
PACKLWES machinery — demonstrating the hardware-sharing argument:

* a CKKS ciphertext is the same ``(c0, c1)`` RNS pair; only the message
  embedding differs (``round(scale * m)`` instead of ``round(M/t * m)``);
* the DOTPRODUCT pipeline (NTT -> MULTPOLY -> INTT -> RESCALE) is reused
  verbatim, with RESCALE dividing the *scale* by ``p``;
* EXTRACTLWES / PACKLWES are message-agnostic RLWE operations, so packed
  CKKS dot products work with the same Galois keys.

Two encoders are provided: the *coefficient* encoder (fixed-point reals
in polynomial coefficients — the HMVP-compatible layout, Eq. 1 style)
and the *canonical-embedding slot* encoder (classic CKKS SIMD over
``n/2`` complex slots, implemented with an explicit Vandermonde of the
odd powers of ``ξ = exp(iπ/n)``; fine for the ring sizes this library
targets — it is a functional model, not a performance kernel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

import numpy as np

from ..math.modular import modadd_vec, modmul_vec, modneg_vec
from .context import CheContext
from .keys import (
    GaloisKeyset,
    SecretKey,
    generate_galois_keyset,
    generate_secret_key,
    pack_galois_elements,
)
from .params import CheParams, cham_params
from .rlwe import RlweCiphertext

__all__ = ["CkksCiphertext", "CkksSlotEncoder", "CkksScheme"]


@dataclass
class CkksCiphertext:
    """An RLWE pair plus its tracked scale (and an encoding tag)."""

    ct: RlweCiphertext
    scale: float
    #: "coeff" (fixed point in coefficients) or "slot" (canonical embedding)
    encoding: str = "coeff"

    @property
    def is_augmented(self) -> bool:
        return self.ct.is_augmented

    def __add__(self, other: "CkksCiphertext") -> "CkksCiphertext":
        if abs(self.scale - other.scale) > 1e-6 * self.scale:
            raise ValueError(
                f"scale mismatch: {self.scale} vs {other.scale}"
            )
        if self.encoding != other.encoding:
            raise ValueError("encoding mismatch")
        return CkksCiphertext(self.ct + other.ct, self.scale, self.encoding)

    def __sub__(self, other: "CkksCiphertext") -> "CkksCiphertext":
        if abs(self.scale - other.scale) > 1e-6 * self.scale:
            raise ValueError("scale mismatch")
        return CkksCiphertext(self.ct - other.ct, self.scale, self.encoding)

    def __neg__(self) -> "CkksCiphertext":
        return CkksCiphertext(-self.ct, self.scale, self.encoding)


@lru_cache(maxsize=None)
def _embedding_matrix(n: int) -> np.ndarray:
    """Vandermonde of the canonical embedding: row j evaluates at
    ``ξ^(4j+1)`` (one representative per conjugate pair), ξ = exp(iπ/n)."""
    xi = np.exp(1j * np.pi / n)
    exponents = (4 * np.arange(n // 2) + 1) % (2 * n)
    points = xi ** exponents
    return np.vander(points, n, increasing=True)


class CkksSlotEncoder:
    """Canonical-embedding encoder: ``n/2`` complex slots."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.slots = n // 2

    def encode(self, values: Sequence[complex], scale: float) -> np.ndarray:
        """Complex slot values -> integer polynomial coefficients."""
        vals = np.asarray(values, dtype=np.complex128)
        if vals.shape[0] > self.slots:
            raise ValueError(f"{vals.shape[0]} values exceed {self.slots} slots")
        padded = np.zeros(self.slots, dtype=np.complex128)
        padded[: vals.shape[0]] = vals
        # invert the embedding: coeffs = Re( V^H z ) * 2 / n  (conjugate
        # pairs contribute twice the real part)
        v = _embedding_matrix(self.n)
        coeffs = np.real(v.conj().T @ padded) * (2.0 / self.n)
        return np.rint(coeffs * scale).astype(np.int64)

    def decode(self, coeffs: Sequence[float], scale: float, count: int) -> np.ndarray:
        """Integer (or real) coefficients -> complex slot values."""
        v = _embedding_matrix(self.n)
        z = v @ (np.asarray(coeffs, dtype=np.float64) / scale)
        return z[:count]


class CkksScheme:
    """CKKS over the CHAM substrate, sharing keys with a BFV instance.

    Parameters
    ----------
    params:
        Same parameter family as BFV (the plaintext modulus is unused).
    default_scale:
        Message scale Δ for fresh encryptions (2**30 fits one rescale:
        after a plaintext product at scale Δ² ≈ 2**60 < Qp, RESCALE by the
        39-bit ``p`` returns to ≈ 2**21).
    shared_secret:
        Reuse another scheme's secret key — the multi-scheme deployment
        the paper targets, where conversions need a common key.
    """

    def __init__(
        self,
        params: Optional[CheParams] = None,
        seed: Optional[int] = None,
        default_scale: float = float(2**30),
        shared_secret: Optional[SecretKey] = None,
        max_pack: Optional[int] = None,
    ) -> None:
        self.params = params if params is not None else cham_params()
        self.ctx = CheContext(self.params, seed)
        self.default_scale = default_scale
        self.secret_key = (
            shared_secret if shared_secret is not None else generate_secret_key(self.ctx)
        )
        elements = pack_galois_elements(self.params.n, max_count=max_pack)
        self.galois_keys: GaloisKeyset = generate_galois_keyset(
            self.ctx, self.secret_key, elements
        )
        self.slot_encoder = CkksSlotEncoder(self.params.n)

    # -- encryption of integer-scaled messages --------------------------------------

    def _encrypt_int_coeffs(
        self, scaled: np.ndarray, augmented: bool, scale: float, encoding: str
    ) -> CkksCiphertext:
        ctx = self.ctx
        basis = ctx.aug_basis if augmented else ctx.ct_basis
        a = ctx.sample_uniform(basis)
        e = ctx.signed_to_limbs(ctx.sample_error_signed(), basis)
        s = self.secret_key.limbs(ctx, basis)
        a_s = ctx.negacyclic_multiply(a, s, basis)
        m_limbs = ctx.limbs_for(np.asarray(scaled, dtype=object), basis)
        c0 = np.stack(
            [
                modadd_vec(modadd_vec(modneg_vec(a_s[i], q), e[i], q), m_limbs[i], q)
                for i, q in enumerate(basis)
            ]
        )
        return CkksCiphertext(
            RlweCiphertext(ctx, basis, c0, a), scale, encoding
        )

    def encrypt_coeffs(
        self,
        values: Sequence[float],
        scale: Optional[float] = None,
        augmented: bool = True,
    ) -> CkksCiphertext:
        """Fixed-point reals placed directly in coefficients (HMVP layout)."""
        scale = scale or self.default_scale
        vals = np.asarray(values, dtype=np.float64)
        if vals.shape[0] > self.params.n:
            raise ValueError("too many values for the ring degree")
        scaled = np.zeros(self.params.n, dtype=np.int64)
        scaled[: vals.shape[0]] = np.rint(vals * scale).astype(np.int64)
        return self._encrypt_int_coeffs(scaled, augmented, scale, "coeff")

    def encrypt_slots(
        self,
        values: Sequence[complex],
        scale: Optional[float] = None,
        augmented: bool = False,
    ) -> CkksCiphertext:
        """Classic CKKS SIMD encryption over the canonical embedding."""
        scale = scale or self.default_scale
        scaled = self.slot_encoder.encode(values, scale)
        return self._encrypt_int_coeffs(scaled, augmented, scale, "slot")

    # -- decryption --------------------------------------------------------------------

    def decrypt_raw(self, ct: CkksCiphertext) -> np.ndarray:
        """Centered phase as float64 (the scaled real message)."""
        phase = ct.ct.phase(self.secret_key)
        return np.array([float(int(v)) for v in phase])

    def decrypt_coeffs(self, ct: CkksCiphertext, count: int) -> np.ndarray:
        if ct.encoding != "coeff":
            raise ValueError("ciphertext is slot-encoded")
        return self.decrypt_raw(ct)[:count] / ct.scale

    def decrypt_slots(self, ct: CkksCiphertext, count: int) -> np.ndarray:
        if ct.encoding != "slot":
            raise ValueError("ciphertext is coefficient-encoded")
        return self.slot_encoder.decode(self.decrypt_raw(ct), ct.scale, count)

    # -- homomorphic operations ------------------------------------------------------------

    def multiply_plain_coeffs(
        self, ct: CkksCiphertext, values: Sequence[float], scale: Optional[float] = None
    ) -> CkksCiphertext:
        """Multiply by a coefficient-encoded real plaintext polynomial."""
        scale = scale or self.default_scale
        vals = np.asarray(values, dtype=np.float64)
        scaled = np.zeros(self.params.n, dtype=np.int64)
        scaled[: vals.shape[0]] = np.rint(vals * scale).astype(np.int64)
        return self._multiply_scaled_poly(ct, scaled, scale)

    def _multiply_scaled_poly(
        self, ct: CkksCiphertext, scaled: np.ndarray, scale: float
    ) -> CkksCiphertext:
        ctx = self.ctx
        basis = ct.ct.basis
        limbs = ctx.limbs_for(np.asarray(scaled, dtype=object), basis)
        pt_ntt = ctx.ntt_limbs(limbs, basis)
        comps = []
        for comp in (ct.ct.c0, ct.ct.c1):
            comp_ntt = ctx.ntt_limbs(comp, basis)
            prod = np.stack(
                [modmul_vec(comp_ntt[i], pt_ntt[i], q) for i, q in enumerate(basis)]
            )
            comps.append(ctx.intt_limbs(prod, basis))
        out = RlweCiphertext(ctx, basis, comps[0], comps[1])
        return CkksCiphertext(out, ct.scale * scale, ct.encoding)

    def rescale(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Stage-4 RESCALE: divide ciphertext and scale by ``p``."""
        if not ct.is_augmented:
            raise ValueError("rescale applies to augmented ciphertexts")
        res = ct.ct.rescale()
        return CkksCiphertext(
            res, ct.scale / self.params.special_modulus, ct.encoding
        )

    # -- the CHAM pipeline for CKKS ----------------------------------------------------------

    def dot_product(
        self, ct: CkksCiphertext, row: Sequence[float], scale: Optional[float] = None
    ) -> CkksCiphertext:
        """Coefficient-encoded dot product (Eq. 1/2 applied to reals).

        The constant coefficient of the result encodes ``<row, v>`` at
        scale ``ct.scale * scale / p`` after the rescale.
        """
        if ct.encoding != "coeff":
            raise ValueError("dot products use the coefficient encoding")
        scale = scale or self.default_scale
        row = np.asarray(row, dtype=np.float64)
        n = self.params.n
        if row.shape[0] > n:
            raise ValueError("row longer than ring degree")
        coeffs = np.zeros(n, dtype=np.int64)
        coeffs[0] = int(np.rint(row[0] * scale))
        if row.shape[0] > 1:
            rev = np.rint(row[1:] * scale).astype(np.int64)
            coeffs[n - (row.shape[0] - 1):] = -rev[::-1]
        prod = self._multiply_scaled_poly(ct, coeffs, scale)
        return self.rescale(prod) if prod.is_augmented else prod

    def extract_and_pack(
        self, cts: Sequence[CkksCiphertext]
    ) -> "tuple[CkksCiphertext, int]":
        """EXTRACTLWES + PACKLWES on CKKS dot-product results.

        Returns the packed ciphertext and the slot stride; the pack
        doubles the message per level, which for CKKS is plain scale
        bookkeeping (scale *= 2**levels).
        """
        from .lwe import extract_lwe
        from .packing import pack_lwes

        if not cts:
            raise ValueError("nothing to pack")
        scale = cts[0].scale
        for c in cts:
            if abs(c.scale - scale) > 1e-6 * scale:
                raise ValueError("pack inputs must share a scale")
        lwes = [extract_lwe(c.ct, 0) for c in cts]
        packed = pack_lwes(lwes, self.galois_keys)
        out_scale = scale * (1 << packed.scale_pow2)
        return (
            CkksCiphertext(packed.ct, out_scale, "coeff"),
            self.params.n >> packed.scale_pow2,
        )

    def decrypt_packed(
        self, ct: CkksCiphertext, count: int, stride: int
    ) -> np.ndarray:
        raw = self.decrypt_raw(ct)
        return raw[: count * stride : stride] / ct.scale

    # -- diagnostics -----------------------------------------------------------------------------

    def precision_bits(self, ct: CkksCiphertext) -> float:
        """log2(scale / expected-noise): the usable fractional precision."""
        sigma = self.params.error_std
        noise = 6 * sigma * math.sqrt(self.params.n)
        return math.log2(ct.scale / noise)
