"""Shared HE context: randomness, samplers and per-limb NTT caches.

Every HE object (keys, ciphertexts, the HMVP engine) references one
:class:`CheContext`.  The context owns

* the parameter set,
* a seeded :class:`numpy.random.Generator` (reproducible experiments),
* samplers for the three RLWE distributions (uniform, ternary secret,
  centered discrete Gaussian error),
* cached :class:`~repro.math.ntt.NegacyclicNtt` objects per modulus, and
* helpers that apply per-limb NTT transforms to RNS limb stacks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..math.ntt import FusedLimbNtt, NegacyclicNtt, fused_limb_ntt
from ..math.rns import RnsBasis
from .params import CheParams

__all__ = ["CheContext"]


class CheContext:
    """Runtime state shared by all HE operations under one parameter set."""

    def __init__(self, params: CheParams, seed: Optional[int] = None) -> None:
        self.params = params
        self.rng = np.random.default_rng(seed)
        self._ntts: Dict[int, NegacyclicNtt] = {}

    # -- NTT machinery -----------------------------------------------------------

    def ntt(self, q: int) -> NegacyclicNtt:
        """The cached negacyclic NTT context for modulus ``q``."""
        ctx = self._ntts.get(q)
        if ctx is None:
            ctx = NegacyclicNtt(self.params.n, q)
            self._ntts[q] = ctx
        return ctx

    def fused_ntt(self, basis: RnsBasis) -> FusedLimbNtt:
        """The cached fused-limb NTT context for a whole basis."""
        return fused_limb_ntt(self.params.n, basis.moduli)

    def ntt_limbs(self, limbs: np.ndarray, basis: RnsBasis) -> np.ndarray:
        """Forward NTT of an RNS limb stack ``(L, ..., n)``, per-limb moduli.

        One fused butterfly sweep over the whole stack (bit-identical to
        transforming each limb separately — see
        :class:`repro.math.ntt.FusedLimbNtt`).
        """
        return self.fused_ntt(basis).forward(limbs)

    def intt_limbs(self, limbs: np.ndarray, basis: RnsBasis) -> np.ndarray:
        """Inverse NTT of an RNS limb stack (fused over all limbs)."""
        return self.fused_ntt(basis).inverse(limbs)

    def negacyclic_multiply(
        self, a: np.ndarray, b: np.ndarray, basis: RnsBasis
    ) -> np.ndarray:
        """Per-limb negacyclic product of two limb stacks."""
        return np.stack(
            [self.ntt(q).multiply(a[i], b[i]) for i, q in enumerate(basis)]
        )

    # -- samplers ------------------------------------------------------------------

    def sample_uniform(self, basis: RnsBasis) -> np.ndarray:
        """Uniform ring element as an RNS limb stack ``(L, n)``.

        Each limb is sampled independently and uniformly — this represents
        a uniform element of ``R_Q`` exactly, by CRT.
        """
        n = self.params.n
        return np.stack(
            [self.rng.integers(0, q, n, dtype=np.uint64) for q in basis]
        )

    def sample_ternary_signed(self) -> np.ndarray:
        """Ternary secret coefficients in ``{-1, 0, 1}`` (int64)."""
        return self.rng.integers(-1, 2, self.params.n, dtype=np.int64)

    def sample_error_signed(self, std: Optional[float] = None) -> np.ndarray:
        """Centered discrete Gaussian error (rounded normal, int64)."""
        sigma = self.params.error_std if std is None else std
        return np.rint(
            self.rng.normal(0.0, sigma, self.params.n)
        ).astype(np.int64)

    def signed_to_limbs(self, signed: np.ndarray, basis: RnsBasis) -> np.ndarray:
        """Reduce small signed coefficients into each limb of a basis."""
        signed = np.asarray(signed, dtype=np.int64)
        out = []
        for q in basis:
            out.append(np.mod(signed, q).astype(np.uint64))
        return np.stack(out)

    def limbs_for(self, values: Sequence[int], basis: RnsBasis) -> np.ndarray:
        """Reduce arbitrary (bigint) coefficients into a limb stack."""
        arr = np.asarray(values, dtype=object)
        return np.stack(
            [np.asarray(np.mod(arr, q), dtype=np.uint64) for q in basis]
        )

    # -- convenience -----------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.params.n

    @property
    def t(self) -> int:
        return self.params.plain_modulus

    @property
    def ct_basis(self) -> RnsBasis:
        return self.params.ct_basis

    @property
    def aug_basis(self) -> RnsBasis:
        return self.params.aug_basis

    def fork(self, seed: int) -> "CheContext":
        """A context with the same parameters but an independent stream."""
        return CheContext(self.params, seed)
