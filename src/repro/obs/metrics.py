"""Metrics substrate: counters, gauges, histograms, and a registry.

The paper's runtime ships "FPGA health monitoring" (Section III-C) and
every headline result is a counter read out of a simulator; this module
is the common sink those numbers flow into.  Three instrument kinds:

* :class:`Counter` — monotonically increasing tallies (NTT transforms
  executed, pack reductions, pipeline stall cycles);
* :class:`Gauge` — last-written values (noise budget of the most recent
  ciphertext, reduce-buffer peak, device temperature);
* :class:`Histogram` — streaming count/sum/min/max over observations
  (per-job cycle counts, span durations).

A :class:`MetricsRegistry` owns instruments by name.  The module-level
:data:`REGISTRY` is the process-wide default every instrumented call
site in :mod:`repro` writes to; it starts *disabled*, and while disabled
every write is a single attribute check — the zero-overhead no-op mode
that keeps instrumentation permanently compiled into the hot paths.

Thread safety: instrument creation is guarded by a lock; updates rely on
the GIL plus per-instrument locks for the read-modify-write cases
(counters and histograms), so concurrent runtimes (the multi-engine
scheduler, threaded benchmark harnesses) can share the registry.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Streaming summary statistics plus a bounded quantile reservoir.

    The count/sum/min/max summary is exact and O(1); percentiles come
    from a uniform random sample of *all* observations, maintained with
    Vitter's Algorithm R: below :data:`RESERVOIR_CAP` every observation
    is kept (quantiles are exact there), above it each i-th observation
    replaces a random slot with probability cap/i, so late-arriving tail
    latencies stay representatively sampled instead of being dropped.
    The RNG is seeded from the instrument name, keeping runs
    reproducible.
    """

    RESERVOIR_CAP = 65536

    __slots__ = ("name", "count", "total", "min", "max", "_values", "_rng", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: list = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._values) < self.RESERVOIR_CAP:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_CAP:
                    self._values[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the reservoir (``0 < p <= 100``)."""
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        with self._lock:
            values = sorted(self._values)
        if not values:
            return 0.0
        rank = max(1, -(-int(p * len(values)) // 100))  # ceil(p*n/100)
        return values[min(rank, len(values)) - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named instruments plus the enabled/no-op switch.

    The convenience writers (:meth:`inc`, :meth:`set_gauge`,
    :meth:`observe`) return immediately while ``enabled`` is False, so
    call sites never need their own guard; hot paths that want to avoid
    even the function call can still check ``registry.enabled`` first.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) -------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram(name))

    # -- convenience writers (no-ops while disabled) -------------------------

    def inc(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.histogram(name).observe(value)

    # -- introspection -------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Current value of a counter, 0 when it was never incremented.

        Read-side convenience for tests and report builders: asserting on
        a counter must not create it as a side effect (``counter()``
        would), and a never-touched counter reads as zero.
        """
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time dump of every instrument, JSON-serializable."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (the enabled flag is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: Process-wide default registry; disabled (no-op) until
#: :func:`enable_metrics` is called.
REGISTRY = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    return REGISTRY


def enable_metrics() -> MetricsRegistry:
    """Turn on the default registry and return it."""
    REGISTRY.enabled = True
    return REGISTRY


def disable_metrics() -> MetricsRegistry:
    """Return the default registry to no-op mode (instruments retained)."""
    REGISTRY.enabled = False
    return REGISTRY


def metrics_enabled() -> bool:
    return REGISTRY.enabled
