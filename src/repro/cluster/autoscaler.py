"""Queue-depth-driven autoscaling policy for the elastic cluster.

The policy consumes the same signals :mod:`repro.obs` already exports —
queue depth (``cluster.queue.depth`` / ``serve.queue.depth`` gauges) and
goodput counters — and emits at most one decision per observation:

* **scale up** after ``up_after`` *consecutive* observations with the
  backlog at or above ``high_queue_depth`` (sustained pressure, not a
  blip);
* **scale down** after ``down_after`` consecutive observations at or
  below ``low_queue_depth`` (sustained idle);
* a **cooldown** of ``cooldown`` observations after any action, plus the
  gap between the two watermarks, gives the classic hysteresis window —
  the policy cannot flap a node in and out on oscillating load.

The policy is pure and deterministic (no wall clock, no randomness): the
chaos/property suites replay it exactly, and
:class:`~repro.cluster.membership.ClusterController.maybe_autoscale`
turns its decisions into membership events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass
class AutoscalerConfig:
    """Hysteresis knobs (defaults sized for the simulated cluster)."""

    #: backlog at/above this arms the scale-up path
    high_queue_depth: float = 8.0
    #: backlog at/below this arms the scale-down path
    low_queue_depth: float = 1.0
    #: consecutive breaching observations before scaling up
    up_after: int = 2
    #: consecutive idle observations before scaling down
    down_after: int = 4
    #: observations to ignore after any action (either direction)
    cooldown: int = 3
    min_nodes: int = 1
    max_nodes: int = 16

    def __post_init__(self) -> None:
        if self.low_queue_depth > self.high_queue_depth:
            raise ValueError(
                "low watermark must not exceed the high watermark"
            )
        if self.up_after < 1 or self.down_after < 1:
            raise ValueError("hysteresis windows must be >= 1 observation")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")


class Autoscaler:
    """Streaming scale-up/scale-down decider with hysteresis."""

    def __init__(self, config: Optional[AutoscalerConfig] = None) -> None:
        self.config = config or AutoscalerConfig()
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown_left = 0
        self.observations = 0
        self.decisions: Dict[str, int] = {"up": 0, "down": 0}

    @staticmethod
    def _obs_queue_depth() -> float:
        """Default signal: the deepest queue gauge the registry carries."""
        gauges = obs.REGISTRY.snapshot().get("gauges", {})
        return max(
            float(gauges.get("cluster.queue.depth", 0.0)),
            float(gauges.get("serve.queue.depth", 0.0)),
            float(gauges.get("batch.queue.depth", 0.0)),
        )

    def observe(
        self,
        queue_depth: Optional[float] = None,
        nodes: Optional[int] = None,
        goodput: Optional[float] = None,
    ) -> Optional[str]:
        """Ingest one observation; return ``"up"``, ``"down"`` or ``None``.

        ``queue_depth`` defaults to the registry's queue gauges;
        ``nodes`` (the current pool size) bounds decisions to
        ``[min_nodes, max_nodes]``.  ``goodput`` is advisory: a zero
        goodput with backlog counts as pressure even below the high
        watermark (the cluster is stalled, not merely busy).
        """
        cfg = self.config
        if queue_depth is None:
            queue_depth = self._obs_queue_depth()
        self.observations += 1
        stalled = goodput is not None and goodput == 0.0 and queue_depth > 0
        if queue_depth >= cfg.high_queue_depth or stalled:
            self._high_streak += 1
            self._low_streak = 0
        elif queue_depth <= cfg.low_queue_depth:
            self._low_streak += 1
            self._high_streak = 0
        else:
            # between the watermarks: the hysteresis dead band
            self._high_streak = 0
            self._low_streak = 0
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if self._high_streak >= cfg.up_after and (
            nodes is None or nodes < cfg.max_nodes
        ):
            self._high_streak = 0
            self._cooldown_left = cfg.cooldown
            self.decisions["up"] += 1
            obs.set_gauge("cluster.autoscaler.last_depth", queue_depth)
            return "up"
        if self._low_streak >= cfg.down_after and (
            nodes is None or nodes > cfg.min_nodes
        ):
            self._low_streak = 0
            self._cooldown_left = cfg.cooldown
            self.decisions["down"] += 1
            obs.set_gauge("cluster.autoscaler.last_depth", queue_depth)
            return "down"
        return None
