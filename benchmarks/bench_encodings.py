"""E11 — Section II-E: encoding complexity comparison.

Reproduces the paper's asymptotic claims: coefficient encoding needs
``O(m)`` HE operations vs ``O(m log2 N)`` for batch encoding, and beats
the also-``O(m)`` diagonal method on constant factors (no per-step
rotation/key-switch).  Functional versions of all three encodings run as
timing kernels.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core.baselines import BaselineHmvp, batch_friendly_plain_modulus
from repro.core.complexity import batch_cost, coefficient_cost, diagonal_cost
from repro.core.hmvp import hmvp
from repro.he.bfv import BfvScheme
from repro.he.params import CheParams

SHAPES = [(512, 4096), (1024, 4096), (2048, 4096), (4096, 4096), (8192, 4096)]


def test_encoding_cost_table():
    rows = []
    for m, n in SHAPES:
        c = coefficient_cost(m, n, 4096)
        d = diagonal_cost(m, n, 4096)
        b = batch_cost(m, n, 4096)
        rows.append(
            (
                f"{m}x{n}",
                f"{c.he_ops:,} ({c.keyswitches:,} ks)",
                f"{d.he_ops:,} ({d.keyswitches:,} ks)",
                f"{b.he_ops:,} ({b.keyswitches:,} ks)",
            )
        )
        assert b.he_ops > d.he_ops >= c.he_ops
    print_table(
        "Section II-E: HE ops per HMVP (and key-switches)",
        ["matrix", "coefficient (Alg. 1)", "diagonal [21]", "batch [21]"],
        rows,
    )


def test_growth_rates():
    """O(m) vs O(m log2 N): the batch/coefficient ratio is ~log2(N)."""
    m, n = 4096, 4096
    c = coefficient_cost(m, n, 4096)
    b = batch_cost(m, n, 4096)
    ratio = b.he_ops / c.he_ops
    print(f"\nbatch/coefficient HE-op ratio: {ratio:.1f} (log2(N)={12})")
    assert 8 <= ratio <= 16


def test_diagonal_constant_factor():
    """Diagonal is O(m) too, but pays ~2x in HE ops (a rotation per
    multiply) — the 'smaller overhead' clause of Section II-E."""
    m, n = 4096, 4096
    c = coefficient_cost(m, n, 4096)
    d = diagonal_cost(m, n, 4096)
    assert 1.5 <= d.he_ops / c.he_ops <= 2.5


def test_plaintext_precision_advantage(bench_scheme):
    """A bonus of coefficient encoding at CHAM's parameters: batch
    plaintexts have full-size (~t) coefficients, so plain multiplication
    noise scales with t and forces a small plaintext modulus, while
    coefficient encoding supports the full 40-bit t."""
    assert bench_scheme.params.plain_modulus.bit_length() == 41
    batch_t = batch_friendly_plain_modulus(128, 20)
    assert batch_t.bit_length() <= 21


# -- functional kernels, one per encoding ------------------------------------------


@pytest.mark.benchmark(group="encodings")
def test_perf_coefficient_encoding(benchmark, bench_scheme, rng):
    a = rng.integers(-8, 8, (4, 128))
    v = rng.integers(-8, 8, 128)
    ct = bench_scheme.encrypt_vector(v)
    benchmark(hmvp, bench_scheme, a, ct)


@pytest.fixture(scope="module")
def batch_baseline():
    t = batch_friendly_plain_modulus(128, 20)
    scheme = BfvScheme(CheParams(n=128, plain_modulus=t), seed=51, max_pack=2)
    return BaselineHmvp(scheme)


@pytest.mark.benchmark(group="encodings")
def test_perf_batch_rotate_and_sum(benchmark, batch_baseline, rng):
    a = rng.integers(-8, 8, (4, 64))
    v = rng.integers(-8, 8, 64)
    ct = batch_baseline.encrypt_slots(v)
    benchmark(batch_baseline.rotate_and_sum, a, ct)


@pytest.mark.benchmark(group="encodings")
def test_perf_diagonal(benchmark, batch_baseline, rng):
    a = rng.integers(-8, 8, (4, 16))
    v = rng.integers(-8, 8, 16)
    ct = batch_baseline.encrypt_slots_replicated(v)
    benchmark(batch_baseline.diagonal, a, ct)


def test_functional_agreement(batch_baseline, bench_scheme, rng):
    """All three encodings compute the same matrix-vector product."""
    a = rng.integers(-8, 8, (4, 16))
    v = rng.integers(-8, 8, 16)
    want = a.astype(object) @ v.astype(object)

    got_coeff = hmvp(
        bench_scheme, a, bench_scheme.encrypt_vector(v)
    ).decrypt(bench_scheme)
    assert np.array_equal(got_coeff, want)

    ct = batch_baseline.encrypt_slots(v)
    got_rs = batch_baseline.decode_rotate_and_sum(
        batch_baseline.rotate_and_sum(a, ct)
    )
    assert np.array_equal(got_rs, want)

    ctr = batch_baseline.encrypt_slots_replicated(v)
    got_diag = batch_baseline.decode_diagonal(batch_baseline.diagonal(a, ctr), 4)
    assert np.array_equal(got_diag, want)
