"""Tests for the memory-system and energy models."""

import pytest

from repro.hw.memory import StagingBuffer, job_traffic, sustained_bandwidth
from repro.hw.power import PowerModel, energy_per_hmvp


# -- memory -----------------------------------------------------------------------


def test_job_traffic_breakdown():
    t = job_traffic(rows=4096, col_tiles=1)
    by = t.by_stream()
    assert set(by) == {
        "plaintext rows",
        "vector ct",
        "switching keys",
        "packed result",
    }
    # the matrix stream dominates everything else by orders of magnitude
    assert t.rows_in > 50 * (t.vector_in + t.keys_in + t.result_out)
    assert t.total == sum(by.values())


def test_job_traffic_scales_linearly_in_rows():
    a = job_traffic(1024)
    b = job_traffic(2048)
    assert b.rows_in == 2 * a.rows_in
    assert b.result_out == a.result_out  # one packed ct either way


def test_job_traffic_column_tiles():
    one = job_traffic(1024, col_tiles=1)
    two = job_traffic(1024, col_tiles=2)
    assert two.rows_in == 2 * one.rows_in
    assert two.vector_in == 2 * one.vector_in


def test_staging_buffer_balanced():
    """DMA keeping exact pace with the engine: no starves, no blocking."""
    buf = StagingBuffer(
        capacity_polys=24, fill_rate=3 / 6144, drain_per_row=3, row_interval=6144
    )
    out = buf.simulate(rows=512)
    assert out["starves"] <= 1  # at most the cold start
    assert out["dma_blocked_cycles"] == 0
    assert out["peak_polys"] <= 24


def test_staging_buffer_slow_dma_starves():
    buf = StagingBuffer(
        capacity_polys=24, fill_rate=1 / 6144, drain_per_row=3, row_interval=6144
    )
    out = buf.simulate(rows=64)
    assert out["starves"] > 32  # engine starves on most rows


def test_staging_buffer_small_capacity_blocks_dma():
    buf = StagingBuffer(
        capacity_polys=3, fill_rate=9 / 6144, drain_per_row=3, row_interval=6144
    )
    out = buf.simulate(rows=64)
    assert out["dma_blocked_cycles"] > 0
    assert out["peak_polys"] <= 3


def test_sustained_bandwidth_below_roof():
    """The §III-B conclusion from the traffic side: a whole-HMVP engine
    pulls well under the DDR roof — the design is compute-bound."""
    bw = sustained_bandwidth()
    assert bw["total_gbps"] < 0.25 * bw["roof_gbps"]
    assert bw["per_engine_gbps"] == pytest.approx(
        3 * 4096 * 8 * (300e6 / 6144) / 1e9, rel=1e-6
    )


# -- power -----------------------------------------------------------------------------


def test_power_model_clamps_utilization():
    p = PowerModel()
    assert p.fpga_power(-1.0) == p.fpga_static_w
    assert p.fpga_power(2.0) == p.fpga_static_w + p.fpga_dynamic_w
    assert p.fpga_static_w < p.fpga_power(0.5) < p.fpga_power(1.0)


def test_cham_is_most_energy_efficient():
    out = energy_per_hmvp(8192, 4096)
    assert out["cham_j"] < out["gpu_j"] < out["cpu_j"]
    assert out["cham_vs_cpu"] > 50
    assert out["cham_vs_gpu"] > 2


def test_energy_scales_with_work():
    small = energy_per_hmvp(2048, 256)
    large = energy_per_hmvp(16384, 4096)
    assert large["cham_j"] > small["cham_j"]
    assert large["cpu_j"] > small["cpu_j"]


def test_efficiency_grows_with_utilization():
    """Bigger jobs amortize the static power: J/row falls with m."""
    small = energy_per_hmvp(1024, 4096)
    large = energy_per_hmvp(16384, 4096)
    assert large["cham_j"] / 16384 < small["cham_j"] / 1024
