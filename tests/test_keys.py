"""Tests for key material."""

import numpy as np
import pytest

from repro.he.keys import (
    GaloisKeyset,
    generate_galois_keyset,
    generate_keyswitch_key,
    generate_public_key,
    generate_secret_key,
    pack_galois_elements,
)


def test_secret_key_is_ternary(ctx128):
    sk = generate_secret_key(ctx128)
    assert set(np.unique(sk.signed)).issubset({-1, 0, 1})
    assert sk.signed.shape == (128,)
    assert 0 < sk.hamming_weight <= 128


def test_secret_key_limb_cache(ctx128, sk128):
    limbs1 = sk128.limbs(ctx128, ctx128.ct_basis)
    limbs2 = sk128.limbs(ctx128, ctx128.ct_basis)
    assert limbs1 is limbs2  # cached
    assert limbs1.shape == (2, 128)
    aug = sk128.limbs(ctx128, ctx128.aug_basis)
    assert aug.shape == (3, 128)
    # the first two limbs agree between bases
    assert np.array_equal(aug[:2], limbs1)


def test_secret_key_ntt_cache(ctx128, sk128):
    ntt1 = sk128.ntt_limbs(ctx128, ctx128.aug_basis)
    assert ntt1.shape == (3, 128)
    back = ctx128.intt_limbs(ntt1, ctx128.aug_basis)
    assert np.array_equal(back, sk128.limbs(ctx128, ctx128.aug_basis))


def test_automorphed_secret(ctx128, sk128):
    from repro.math.polynomial import automorph

    g = 5
    rot = sk128.automorphed(g)
    # compare against the modular automorphism of the reduced key
    q = ctx128.ct_basis.moduli[0]
    want = automorph(sk128.limbs(ctx128, ctx128.ct_basis)[0], g, q)
    got = ctx128.signed_to_limbs(rot.signed, ctx128.ct_basis)[0]
    assert np.array_equal(got, want)


def test_public_key_is_encryption_of_zero(ctx128, sk128, pk128):
    """pk.b + pk.a * s must be small (the error) in every limb."""
    basis = ctx128.aug_basis
    s = sk128.limbs(ctx128, basis)
    a_s = ctx128.negacyclic_multiply(pk128.a, s, basis)
    from repro.math.modular import modadd_vec

    total = np.stack(
        [modadd_vec(pk128.b[i], a_s[i], q) for i, q in enumerate(basis)]
    )
    phase = basis.compose_centered(total)
    worst = max(abs(int(v)) for v in phase)
    assert worst < 64  # a few sigma of the error distribution


def test_keyswitch_key_shape(ctx128, sk128):
    other = generate_secret_key(ctx128)
    ksk = generate_keyswitch_key(ctx128, other, sk128)
    assert ksk.decomp_count == 2  # dnum = number of ciphertext limbs
    for part in ksk.b_ntt + ksk.a_ntt:
        assert part.shape == (3, 128)  # augmented basis


def test_pack_galois_elements_full():
    assert pack_galois_elements(16) == [3, 5, 9, 17]


def test_pack_galois_elements_bounded():
    assert pack_galois_elements(4096, max_count=8) == [3, 5, 9]
    assert pack_galois_elements(4096, max_count=1) == []
    assert pack_galois_elements(4096, max_count=2) == [3]


def test_galois_keyset_lookup(ctx128, sk128):
    ks = generate_galois_keyset(ctx128, sk128, [3, 5])
    assert 3 in ks and 5 in ks and 9 not in ks
    with pytest.raises(KeyError, match="missing Galois key"):
        _ = ks[9]


def test_galois_keyset_default_elements(ctx128, sk128):
    ks = generate_galois_keyset(ctx128, sk128)
    # full pack of n=128 needs log2(128)=7 levels
    assert len(ks.keys) == 7
    assert (1 << 7) + 1 in ks
