"""The homomorphic-encryption layer of the CHAM reproduction.

Implements the RNS-BFV-style scheme of Section II with the paper's exact
moduli, the RLWE/LWE ciphertext types and their conversions (Eq. 3), the
PACKTWOLWES / PACKLWES algorithms (Alg. 2/3), hybrid key-switching with
the 39-bit special modulus, noise tracking, and the Paillier baseline the
HeteroLR evaluation compares against.
"""

from .params import CheParams, cham_params, toy_params, estimate_security
from .paramgen import ParamRequest, generate_params, low_hamming_prime_menu
from .context import CheContext
from .encoder import CoefficientEncoder, FixedPointCodec, Plaintext
from .keys import (
    GaloisKeyset,
    KeySwitchKey,
    PublicKey,
    SecretKey,
    generate_galois_key,
    generate_galois_keyset,
    generate_keyswitch_key,
    generate_public_key,
    generate_secret_key,
    pack_galois_elements,
)
from .rlwe import RlweCiphertext, decrypt, encrypt, encrypt_pk
from .lwe import LweCiphertext, decrypt_lwe, extract_lwe, lwe_to_rlwe
from .lwe_ops import (
    LweKeySwitchKey,
    PlainLwe,
    decrypt_plain_lwe,
    generate_lwe_keyswitch_key,
    lwe_keyswitch,
    lwe_modswitch,
)
from .keyswitch import apply_keyswitch, key_switch_raw
from .automorphism import apply_automorphism, apply_automorphism_with_key
from .packing import PackedResult, pack_lwes, pack_reduction_count, pack_two_lwes
from .noise import (
    NoiseModel,
    absolute_noise_bits,
    invariant_noise_budget,
    packed_slot_positions,
)
from .bfv import BfvScheme
from .bgv import BgvScheme, bfv_to_bgv, bgv_to_bfv, conversion_factor
from .ckks import CkksCiphertext, CkksScheme, CkksSlotEncoder
from .conversion import bfv_to_ckks, ckks_to_bfv, max_exact_message
from .paillier import Paillier, paillier_keygen
from .serialization import (
    CommunicationLedger,
    deserialize_lwe,
    deserialize_plaintext,
    deserialize_rlwe,
    rlwe_wire_bytes,
    serialize_lwe,
    serialize_plaintext,
    serialize_rlwe,
)

__all__ = [
    "CheParams",
    "ParamRequest",
    "generate_params",
    "low_hamming_prime_menu",
    "cham_params",
    "toy_params",
    "estimate_security",
    "CheContext",
    "CoefficientEncoder",
    "FixedPointCodec",
    "Plaintext",
    "GaloisKeyset",
    "KeySwitchKey",
    "PublicKey",
    "SecretKey",
    "generate_galois_key",
    "generate_galois_keyset",
    "generate_keyswitch_key",
    "generate_public_key",
    "generate_secret_key",
    "pack_galois_elements",
    "RlweCiphertext",
    "decrypt",
    "encrypt",
    "encrypt_pk",
    "LweCiphertext",
    "LweKeySwitchKey",
    "PlainLwe",
    "decrypt_plain_lwe",
    "generate_lwe_keyswitch_key",
    "lwe_keyswitch",
    "lwe_modswitch",
    "decrypt_lwe",
    "extract_lwe",
    "lwe_to_rlwe",
    "apply_keyswitch",
    "key_switch_raw",
    "apply_automorphism",
    "apply_automorphism_with_key",
    "PackedResult",
    "pack_lwes",
    "pack_reduction_count",
    "pack_two_lwes",
    "NoiseModel",
    "absolute_noise_bits",
    "invariant_noise_budget",
    "packed_slot_positions",
    "BfvScheme",
    "BgvScheme",
    "bfv_to_bgv",
    "bgv_to_bfv",
    "conversion_factor",
    "CkksCiphertext",
    "CkksScheme",
    "CkksSlotEncoder",
    "bfv_to_ckks",
    "ckks_to_bfv",
    "max_exact_message",
    "Paillier",
    "paillier_keygen",
    "CommunicationLedger",
    "deserialize_lwe",
    "deserialize_plaintext",
    "deserialize_rlwe",
    "rlwe_wire_bytes",
    "serialize_lwe",
    "serialize_plaintext",
    "serialize_rlwe",
]
