"""Design-space exploration (Fig. 2b, Section III-B).

Enumerates candidate CHAM configurations — macro-pipeline split, number
of compute engines, NTT-unit allocation, butterfly parallelism, reduce
buffer depth — and scores each by

* *performance*: sustained HMVP throughput (rows/s) from the macro-
  pipeline simulator, and
* *resource utilization*: the Table II bottom-up model, with the paper's
  own fitting rule that every resource class must stay below 75% to
  survive place-and-route (Section V-A).

The Pareto frontier should contain the two optima the paper reports:
``(9 stages, 1 pack unit, 6 NTT/stage-group, 4-PE NTT, 2 engines)`` — the
deployed CHAM — and ``(9 stages, 1 pack unit, 6 NTT, 8-PE NTT, 1 engine)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .arch import ChamConfig, EngineConfig, FpgaDevice, NttUnitConfig, VU9P
from .pipeline import MacroPipeline
from .resources import ResourceVector, total_resources, utilization

__all__ = ["DesignPoint", "enumerate_design_space", "pareto_front", "run_dse"]

#: the paper's place-and-route headroom rule
MAX_UTILIZATION = 0.75


@dataclass
class DesignPoint:
    """One explored configuration with its scores."""

    stages: int
    engines: int
    ntt_units_per_group: int
    n_bfu: int
    reduce_buffer: int
    cfg: ChamConfig
    rows_per_sec: float
    resources: ResourceVector
    fits: bool
    deadlocked: bool = False

    @property
    def label(self) -> str:
        return (
            f"{self.stages}st/{self.engines}eng/"
            f"{self.ntt_units_per_group}ntt/{self.n_bfu}pe/"
            f"buf{self.reduce_buffer}"
        )

    @property
    def max_utilization_pct(self) -> float:
        util = utilization(self.resources)
        return max(util.values())


def _engine_for(
    stages: int, ntt_units_per_group: int, n_bfu: int, reduce_buffer: int
) -> EngineConfig:
    """Construct an engine from the DSE axes.

    ``ntt_units_per_group`` scales the three transform groups in the
    paper's 6:4:10 proportion (stage-1 : stage-3 : pack, per 6-unit
    group = 9:6:15 at the default).  A coarser pipeline split (< 9
    stages) merges pack stages, stretching the pack initiation interval;
    a finer split (> 9) adds fill latency but cannot beat the NTT-bound
    interval — exactly why 9 is the knee.
    """
    scale = ntt_units_per_group / 6
    stage1 = max(1, round(9 * scale))
    stage3 = max(1, round(6 * scale))
    pack = max(1, round(15 * scale))
    # pack stages available for pipelining: stages - 4 (dot side is fixed)
    pack_stage_count = max(stages - 4, 1)
    pack_penalty = 5 / pack_stage_count  # fewer stages => longer interval
    pack = max(1, int(pack / pack_penalty))
    return EngineConfig(
        ntt_unit=NttUnitConfig(n_bfu=n_bfu),
        stage1_ntt_units=stage1,
        stage3_intt_units=stage3,
        pack_ntt_units=pack,
        pipeline_stages=stages,
        reduce_buffer_entries=reduce_buffer,
    )


def enumerate_design_space(
    stages_options: Iterable[int] = (5, 7, 9, 11),
    engines_options: Iterable[int] = (1, 2, 3),
    ntt_units_options: Iterable[int] = (4, 6, 8),
    n_bfu_options: Iterable[int] = (2, 4, 8),
    buffer_options: Iterable[int] = (16,),
    device: FpgaDevice = VU9P,
    bench_rows: int = 2048,
) -> List[DesignPoint]:
    """Evaluate the full cross-product of the design axes."""
    points: List[DesignPoint] = []
    for stages in stages_options:
        for engines in engines_options:
            for units in ntt_units_options:
                for n_bfu in n_bfu_options:
                    for buf in buffer_options:
                        engine = _engine_for(stages, units, n_bfu, buf)
                        cfg = ChamConfig(engine=engine, engines=engines)
                        deadlocked = False
                        try:
                            stats = MacroPipeline(engine).simulate_hmvp(
                                bench_rows
                            )
                            per_engine = stats.throughput_rows_per_sec(
                                cfg.clock_hz
                            )
                            rows_per_sec = per_engine * engines
                        except RuntimeError:
                            rows_per_sec = 0.0
                            deadlocked = True
                        res = total_resources(cfg)
                        points.append(
                            DesignPoint(
                                stages=stages,
                                engines=engines,
                                ntt_units_per_group=units,
                                n_bfu=n_bfu,
                                reduce_buffer=buf,
                                cfg=cfg,
                                rows_per_sec=rows_per_sec,
                                resources=res,
                                fits=res.fits(device, MAX_UTILIZATION),
                                deadlocked=deadlocked,
                            )
                        )
    return points


def pareto_front(points: List[DesignPoint]) -> List[DesignPoint]:
    """Feasible points not dominated in (performance, resource headroom)."""
    feasible = [p for p in points if p.fits and not p.deadlocked]
    front = []
    for p in feasible:
        dominated = any(
            q.rows_per_sec >= p.rows_per_sec
            and q.max_utilization_pct <= p.max_utilization_pct
            and (
                q.rows_per_sec > p.rows_per_sec
                or q.max_utilization_pct < p.max_utilization_pct
            )
            for q in feasible
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: -p.rows_per_sec)


def run_dse(device: FpgaDevice = VU9P) -> "tuple[List[DesignPoint], List[DesignPoint]]":
    """Full sweep + frontier (the Fig. 2b scatter and its upper hull)."""
    points = enumerate_design_space(device=device)
    return points, pareto_front(points)


def achievable_clock_mhz(point: DesignPoint) -> float:
    """Empirical P&R timing model: congestion costs Fmax.

    Below ~60 % peak-class utilization the VU9P closes ~350 MHz for this
    pipeline; each extra utilization point costs ~1.5 MHz of congestion
    slack.  The deployed CHAM point (72 % BRAM) lands at the paper's
    300 MHz; overfilled configurations would close slow even if they
    placed — a second reason the Fig. 2b frontier bends where it does.
    """
    derated = 400.0 - 1.5 * point.max_utilization_pct
    return max(150.0, min(350.0, derated))


def frequency_adjusted_rows_per_sec(point: DesignPoint) -> float:
    """Throughput re-priced at the achievable clock instead of 300 MHz."""
    nominal_clock = 300.0
    return point.rows_per_sec * achievable_clock_mhz(point) / nominal_clock
