"""Discrete-event simulation of the 9-stage macro-pipeline (Section III-A).

Job model for one HMVP of ``rows`` rows (and ``col_tiles`` column tiles):

* stage 1 first transforms the 6 augmented vector-ciphertext polynomials
  (a one-off fill); thereafter one *dot product* (stages 1-4: plaintext
  NTT, MULTPOLY, INTT, RESCALE+EXTRACTLWES) retires every
  ``dot_product_interval`` cycles;
* with multiple column tiles a row needs ``col_tiles`` dot products whose
  LWE results are aggregated before packing — the Fig. 6 "n >= m"
  throughput penalty;
* extracted LWEs enter the *reduce buffer*; the single PACKTWOLWES module
  (stages 5-9) executes one reduction per ``pack_interval`` cycles,
  *preferring the deepest available reduction* — the paper's "intermediate
  reduction results ... preempt the pipeline";
* when the reduce buffer is full, stage 4 stalls and every later dot
  product slips — the "stalls the execution of the preceding stages"
  behaviour, which the stats expose as ``stall_cycles``.

The simulator is cycle-accurate at stage granularity (the paper's
macro-pipeline units of thousands of cycles), not at FU granularity —
:mod:`repro.hw.ntt_datapath` covers the inside of an NTT unit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from ..obs.metrics import REGISTRY as _METRICS
from .arch import ChamConfig, EngineConfig

__all__ = ["PipelineStats", "MacroPipeline", "simulate_multi_engine"]


@dataclass
class PipelineStats:
    """Outcome of one simulated HMVP on one engine."""

    rows: int
    col_tiles: int
    total_cycles: int
    dot_products: int
    reductions: int
    preemptions: int
    stall_cycles: int
    reduce_buffer_peak: int
    dot_busy_cycles: int
    pack_busy_cycles: int

    @property
    def dot_utilization(self) -> float:
        return self.dot_busy_cycles / max(self.total_cycles, 1)

    @property
    def pack_utilization(self) -> float:
        return self.pack_busy_cycles / max(self.total_cycles, 1)

    def throughput_rows_per_sec(self, clock_hz: float) -> float:
        return self.rows * clock_hz / max(self.total_cycles, 1)

    def record_metrics(self, registry=None) -> None:
        """Export this run into a metrics registry (default: the global).

        Counters accumulate across simulations (reductions, preemptions,
        reduce-buffer stall cycles); gauges hold the latest run's stage
        occupancy; the cycle histogram tracks the job-size distribution.
        """
        reg = registry if registry is not None else _METRICS
        if not reg.enabled:
            return
        reg.inc("hw.pipeline.simulations")
        reg.inc("hw.pipeline.dot_products", self.dot_products)
        reg.inc("hw.pipeline.reductions", self.reductions)
        reg.inc("hw.pipeline.preemptions", self.preemptions)
        reg.inc("hw.pipeline.stall_cycles", self.stall_cycles)
        reg.set_gauge("hw.pipeline.dot_occupancy", self.dot_utilization)
        reg.set_gauge("hw.pipeline.pack_occupancy", self.pack_utilization)
        reg.set_gauge("hw.pipeline.reduce_buffer_peak", self.reduce_buffer_peak)
        reg.observe("hw.pipeline.total_cycles", self.total_cycles)


@dataclass
class _Node:
    """A node of the PACKLWES binary reduction tree."""

    level: int
    ready_children: int = 0
    child_avail: int = 0  # cycle when the later child became available
    parent: Optional["_Node"] = None
    is_root: bool = False


def _build_tree(leaves: int) -> List[_Node]:
    """Leaf nodes of a pack tree over ``leaves`` inputs (padded pow2)."""
    levels = max(leaves - 1, 0).bit_length()
    count = 1 << levels
    if levels == 0:
        return [_Node(level=0, is_root=True)]
    # build bottom-up: nodes[k] at level l has parent at level l+1
    current = [_Node(level=0) for _ in range(count)]
    leaf_nodes = current
    level = 1
    while len(current) > 1:
        parents = [_Node(level=level) for _ in range(len(current) // 2)]
        for i, node in enumerate(current):
            node.parent = parents[i // 2]
        current = parents
        level += 1
    current[0].is_root = True
    return leaf_nodes


class MacroPipeline:
    """One compute engine's macro-pipeline."""

    def __init__(self, engine: EngineConfig) -> None:
        self.engine = engine
        self.fill_cycles = -(-6 * engine.ntt_unit.cycles // engine.stage1_ntt_units)
        self.dot_interval = engine.dot_product_interval
        self.pack_interval = engine.pack_interval
        # latency through the five pack stages ≈ interval per stage slice
        self.pack_latency = engine.pack_interval + 4 * (
            engine.ntt_unit.n // (engine.ppu_lanes * engine.ntt_unit.n_bfu)
        )

    def simulate_hmvp(
        self, rows: int, col_tiles: int = 1, trace: Optional[list] = None
    ) -> PipelineStats:
        """Simulate one HMVP job of ``rows`` output rows.

        Zero-padded pack-tree leaves (when ``rows`` is not a power of two)
        are transparent ciphertexts injected at no dot-product cost, as in
        the functional implementation.

        Pass a list as ``trace`` to receive ``(cycle, kind, detail)``
        events (``dot`` per retired dot product, ``pack`` per reduction
        start with its tree level) — consumed by :mod:`repro.hw.trace`.
        """
        if rows < 1:
            raise ValueError("rows must be positive")
        engine = self.engine
        buffer_cap = engine.reduce_buffer_entries
        leaves = _build_tree(rows)
        levels = max(rows - 1, 0).bit_length()
        padded = 1 << levels

        # -- dot-product side ------------------------------------------------
        dot_products = rows * col_tiles
        next_dot_done = self.fill_cycles + self.dot_interval
        produced = 0  # LWEs fully aggregated and handed to the pack side
        dots_done = 0

        # -- pack side ---------------------------------------------------------
        # pending ready reductions as (avail_time, -level, id); the unit
        # runs the *deepest* reduction among those available when it frees
        # up (preemption priority), never idling past an available one
        pending: "list[tuple[int, int, int]]" = []
        node_by_id = {}
        next_id = 0
        buffer_used = 0
        buffer_peak = 0
        stall_cycles = 0
        preemptions = 0
        reductions_done = 0
        pack_free_at = 0
        pack_busy = 0
        last_level_started: Optional[int] = None
        total_reductions = padded - 1
        finish_time = self.fill_cycles

        def push_ready(node: _Node, avail: int) -> None:
            nonlocal next_id
            heapq.heappush(pending, (avail, -node.level, next_id))
            node_by_id[next_id] = node
            next_id += 1

        def child_done(node: _Node, when: int) -> None:
            parent = node.parent
            if parent is None:
                return
            parent.ready_children += 1
            parent.child_avail = max(parent.child_avail, when)
            if parent.ready_children == 2:
                push_ready(parent, parent.child_avail)

        # transparent zero-padding leaves are available immediately and
        # occupy no buffer slot (they are materialized inside the pack unit)
        for leaf in leaves[rows:]:
            child_done(leaf, 0)

        if padded == 1:
            t = self.fill_cycles + col_tiles * self.dot_interval
            if trace is not None:
                trace.append((t, "dot", 0))
            stats = PipelineStats(
                rows=rows,
                col_tiles=col_tiles,
                total_cycles=t,
                dot_products=dot_products,
                reductions=0,
                preemptions=0,
                stall_cycles=0,
                reduce_buffer_peak=1,
                dot_busy_cycles=col_tiles * self.dot_interval,
                pack_busy_cycles=0,
            )
            stats.record_metrics()
            return stats

        while reductions_done < total_reductions:
            now = pack_free_at
            # deepest reduction available at `now`
            available = [
                entry for entry in pending if entry[0] <= now
            ]
            if available:
                chosen = min(available, key=lambda e: (e[1], e[0], e[2]))
                pending.remove(chosen)
                heapq.heapify(pending)
                node = node_by_id.pop(chosen[2])
                if (
                    last_level_started is not None
                    and node.level > last_level_started
                ):
                    preemptions += 1
                last_level_started = node.level
                if trace is not None:
                    trace.append((now, "pack", node.level))
                done = now + self.pack_latency
                pack_free_at = now + self.pack_interval
                pack_busy += self.pack_interval
                reductions_done += 1
                buffer_used -= 1  # two inputs out, one result in
                finish_time = max(finish_time, done)
                if node.is_root:
                    buffer_used += 1  # root result stays until readout
                else:
                    child_done(node, done)
                continue
            # nothing available now: advance to the next event
            events = []
            if pending:
                events.append(pending[0][0])
            if produced < rows:
                events.append(next_dot_done)
            if not events:
                raise AssertionError(
                    "pack starved with no pending work — tree bookkeeping bug"
                )
            t_next = min(events)
            if produced < rows and next_dot_done <= t_next:
                when = next_dot_done
                if buffer_used >= buffer_cap:
                    # stage-4 stall: the LWE waits for a buffer slot, which
                    # frees when the next reduction retires
                    if not pending:
                        raise RuntimeError(
                            f"reduce buffer deadlock: {buffer_cap} entries "
                            f"too small for {rows}-row pack"
                        )
                    freed_at = max(pack_free_at, pending[0][0])
                    stall_cycles += max(freed_at - when, 0)
                    when = max(when, freed_at)
                buffer_used += 1
                buffer_peak = max(buffer_peak, buffer_used)
                dots_done += col_tiles
                if trace is not None:
                    trace.append((when, "dot", produced))
                child_done(leaves[produced], when)
                produced += 1
                next_dot_done = when + col_tiles * self.dot_interval
            else:
                pack_free_at = t_next

        dot_busy = dot_products * self.dot_interval
        stats = PipelineStats(
            rows=rows,
            col_tiles=col_tiles,
            total_cycles=finish_time,
            dot_products=dot_products,
            reductions=reductions_done,
            preemptions=preemptions,
            stall_cycles=stall_cycles,
            reduce_buffer_peak=buffer_peak,
            dot_busy_cycles=dot_busy,
            pack_busy_cycles=pack_busy,
        )
        stats.record_metrics()
        return stats


def simulate_multi_engine(
    cfg: ChamConfig, rows: int, col_tiles: int = 1
) -> PipelineStats:
    """Split ``rows`` across the engines and merge the stats.

    Rows are balanced across engines in contiguous blocks; the completion
    time is the slowest engine's.
    """
    per_engine = -(-rows // cfg.engines)
    pipelines = MacroPipeline(cfg.engine)
    stats: List[PipelineStats] = []
    remaining = rows
    while remaining > 0:
        chunk = min(per_engine, remaining)
        stats.append(pipelines.simulate_hmvp(chunk, col_tiles))
        remaining -= chunk
    total = max(s.total_cycles for s in stats)
    return PipelineStats(
        rows=rows,
        col_tiles=col_tiles,
        total_cycles=total,
        dot_products=sum(s.dot_products for s in stats),
        reductions=sum(s.reductions for s in stats),
        preemptions=sum(s.preemptions for s in stats),
        stall_cycles=sum(s.stall_cycles for s in stats),
        reduce_buffer_peak=max(s.reduce_buffer_peak for s in stats),
        dot_busy_cycles=sum(s.dot_busy_cycles for s in stats),
        pack_busy_cycles=sum(s.pack_busy_cycles for s in stats),
    )
