"""Tests for the kernel profiler and sim-gap ledger (repro.obs.profile)."""

import json

import pytest

from repro.obs.profile import (
    KERNEL_OF_SPAN,
    STAGE_OF_KERNEL,
    build_ledger,
    collapsed_stacks,
    openmetrics_text,
    profile_batched_hmvp,
    span_self_times,
)
from repro.obs.tracing import Tracer


# -- self-time tree -----------------------------------------------------------


def _synthetic_tracer():
    """A hand-built two-level tree on one track:

    batch.batch [0, 100)
      batch.hoist  [0, 20)
      batch.dot    [20, 80)
        batch.modmul [20, 30)
        batch.intt   [30, 70)
      KEYSWITCH    [80, 95)
    """
    tr = Tracer(enabled=True)
    tr.add_span("batch.batch", ts_us=0.0, dur_us=100.0, depth=0)
    tr.add_span("batch.hoist", ts_us=0.0, dur_us=20.0, depth=1)
    tr.add_span("batch.dot", ts_us=20.0, dur_us=60.0, depth=1)
    tr.add_span("batch.modmul", ts_us=20.0, dur_us=10.0, depth=2)
    tr.add_span("batch.intt", ts_us=30.0, dur_us=40.0, depth=2, limbs=3)
    tr.add_span("KEYSWITCH", ts_us=80.0, dur_us=15.0, depth=1, limbs=2)
    return tr


def test_self_time_subtracts_children_once():
    spans = _synthetic_tracer().spans
    self_us = span_self_times(spans)
    by_name = {s.name: self_us[id(s)] for s in spans}
    # root: 100 - (20 + 60 + 15) = 5; dot: 60 - (10 + 40) = 10
    assert by_name["batch.batch"] == pytest.approx(5.0)
    assert by_name["batch.dot"] == pytest.approx(10.0)
    # leaves keep their full duration
    assert by_name["batch.hoist"] == pytest.approx(20.0)
    assert by_name["batch.modmul"] == pytest.approx(10.0)
    assert by_name["batch.intt"] == pytest.approx(40.0)
    assert by_name["KEYSWITCH"] == pytest.approx(15.0)


def test_self_time_separates_tracks():
    """Identical intervals on different tracks never parent each other."""
    tr = Tracer(enabled=True)
    tr.add_span("batch.batch", ts_us=0.0, dur_us=50.0, track=1, depth=0)
    tr.add_span("batch.intt", ts_us=0.0, dur_us=50.0, track=2, depth=1)
    self_us = span_self_times(tr.spans)
    assert all(v == pytest.approx(50.0) for v in self_us.values())


# -- ledger -------------------------------------------------------------------


def test_build_ledger_synthetic_tree():
    ledger = build_ledger(_synthetic_tracer().spans, rows=8, requests=1)
    by_kernel = {r.kernel: r for r in ledger.rows}
    # all four instrumented kernels present, ranked by wall time
    assert set(by_kernel) == {"ntt_hoist", "modmul", "intt", "keyswitch"}
    walls = [r.wall_us for r in ledger.rows]
    assert walls == sorted(walls, reverse=True)
    assert by_kernel["intt"].wall_us == pytest.approx(40.0)
    assert by_kernel["intt"].by_level == {3: pytest.approx(40.0)}
    assert by_kernel["keyswitch"].by_level == {2: pytest.approx(15.0)}
    # structural spans (batch.batch/batch.dot) are not kernel rows, but
    # the root's duration is the coverage denominator
    assert ledger.total_wall_us == pytest.approx(100.0)
    assert ledger.attributed_wall_us == pytest.approx(85.0)
    assert ledger.coverage == pytest.approx(0.85)
    # every kernel got a positive sim price and therefore a gap
    for row in ledger.rows:
        assert row.sim_cycles > 0
        assert row.sim_us > 0
        assert row.gap > 0
    assert ledger.sim_total_cycles > 0
    assert ledger.overall_gap > 0


def test_ledger_sim_cycles_sum_to_stage_totals():
    """Apportioning by wall share conserves each stage's cycle budget."""
    ledger = build_ledger(_synthetic_tracer().spans, rows=8, requests=1)
    stage_sim = {}
    for row in ledger.rows:
        stage_sim[row.stage] = stage_sim.get(row.stage, 0.0) + row.sim_cycles
    from repro.hw.arch import cham_default_config
    from repro.hw.pipeline import MacroPipeline

    pipe = MacroPipeline(cham_default_config().engine)
    stats = pipe.simulate_hmvp(8, 1)
    assert stage_sim["fill"] == pytest.approx(float(pipe.fill_cycles))
    assert stage_sim["dot"] == pytest.approx(float(stats.dot_busy_cycles))
    assert stage_sim["pack"] == pytest.approx(float(stats.pack_busy_cycles))


def test_kernel_and_stage_maps_agree():
    assert set(KERNEL_OF_SPAN.values()) <= set(STAGE_OF_KERNEL)


def test_ledger_serializes_and_renders():
    ledger = build_ledger(_synthetic_tracer().spans, rows=8, requests=1)
    payload = json.loads(json.dumps(ledger.to_dict()))
    assert payload["coverage"] == pytest.approx(0.85)
    assert {r["kernel"] for r in payload["rows"]} == {
        "ntt_hoist", "modmul", "intt", "keyswitch"
    }
    text = ledger.render_text()
    assert "keyswitch" in text and "gap" in text


# -- the turnkey driver (acceptance) ------------------------------------------


def test_profile_batched_hmvp_attributes_wall_time():
    """Acceptance: the ledger attributes >= 95% of a warm batched run's
    wall time to named kernels, joined against the sim cost model."""
    run = profile_batched_hmvp(rows=4, n=64, batch=4, plain_bits=30)
    ledger = run.ledger
    assert ledger.coverage >= 0.95, ledger.render_text()
    kernels = {r.kernel for r in ledger.rows}
    assert {"ntt_hoist", "modmul", "intt", "keyswitch", "pack"} <= kernels
    # NumPy-on-host must be slower than the modeled accelerator
    assert ledger.overall_gap > 1.0
    assert ledger.sim_total_cycles > 0
    assert run.wall_s > 0
    # shares are fractions of total wall and cannot exceed 1 in sum
    assert sum(r.wall_share for r in ledger.rows) <= 1.0 + 1e-9


def test_keyswitch_wall_share_stays_bounded():
    """Acceptance for the fused-limb rewrite: key-switching no longer
    dominates the warm batched run.

    The per-digit double loop put keyswitch at ~68-70% of wall; the
    fused path measures ~45-55% on the reference runner.  The sim cost
    model prices keyswitch at ~43% of the modeled work for this shape,
    so that is the physical floor for a uniformly-efficient
    implementation — the gate enforces < 65% (comfortably under the old
    kernels, robust to runner noise) rather than the aspirational 40%,
    which would require keyswitch to out-optimize every other kernel."""
    run = profile_batched_hmvp(rows=8, n=128, batch=8, plain_bits=40)
    by_kernel = {r.kernel: r for r in run.ledger.rows}
    assert "keyswitch" in by_kernel, run.ledger.render_text()
    share = by_kernel["keyswitch"].wall_share
    assert share < 0.65, run.ledger.render_text()
    # and it must no longer be more than ~3x its sim-priced share
    sim_share = by_kernel["keyswitch"].sim_cycles / run.ledger.sim_total_cycles
    assert share < 3 * sim_share, run.ledger.render_text()


def test_profile_restores_tracer_state():
    """The driver flips the process-wide tracer on for the measured run
    and restores the prior enabled-state, keeping the spans for export."""
    from repro import obs

    assert obs.TRACER.enabled is False  # the suite's default
    run = profile_batched_hmvp(rows=4, n=64, batch=2, plain_bits=30)
    assert obs.TRACER.enabled is False
    assert len(run.spans) > 0
    assert len(obs.TRACER) == len(run.spans)  # retained for --trace-out


# -- exporters ----------------------------------------------------------------


def test_collapsed_stacks_paths_and_totals():
    text = collapsed_stacks(_synthetic_tracer().spans)
    lines = dict(
        (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
        for line in text.strip().splitlines()
    )
    assert lines["batch.batch"] == 5
    assert lines["batch.batch;batch.dot"] == 10
    assert lines["batch.batch;batch.dot;batch.intt"] == 40
    assert lines["batch.batch;KEYSWITCH"] == 15
    # totals reconstruct the root duration exactly
    assert sum(lines.values()) == 100


def test_openmetrics_text_format():
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.inc("batch.requests", 3)
    reg.set_gauge("he.noise.budget_bits", 17.5)
    for v in (1.0, 2.0, 3.0):
        reg.observe("serve.latency_ms", v)
    text = openmetrics_text(reg)
    assert "# TYPE repro_batch_requests counter" in text
    assert "repro_batch_requests_total 3" in text
    assert "repro_he_noise_budget_bits 17.5" in text
    assert "# TYPE repro_serve_latency_ms summary" in text
    assert "repro_serve_latency_ms_count 3" in text
    assert 'repro_serve_latency_ms{quantile="0.5"} 2.0' in text
    assert text.endswith("# EOF\n")
