"""Extension bench — sharded cluster scale-out under node-hang faults.

One CHAM card is one engine pair; the cluster layer (:mod:`repro.cluster`)
scatters a partitioned matrix across K simulated accelerator nodes and
gathers bit-identical results.  This bench drives the same request list
through 1-, 2-, and 4-node clusters at a 5% injected node-hang rate and
records:

* simulated goodput (requests per device-clock second, from the busiest
  node's cycle counter — deterministic, host-GIL-free);
* failover traffic: shard retries, rebalance events, degraded shards;
* the acceptance ratio: 4 nodes must clear >= 1.8x the simulated
  throughput of 1 node, with zero dropped requests at every size.

Results append to ``BENCH_cluster.json`` via ``record_result``.
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.cluster import ClusterConfig, ClusterExecutor

REQUESTS = 12
ROWS, COLS = 96, 256
FAULT_RATE = 0.05
NODE_SIZES = (1, 2, 4)


@pytest.fixture(scope="module")
def workload(bench_scheme, rng):
    matrix = rng.integers(-30, 30, (ROWS, COLS))
    vectors = [rng.integers(-30, 30, COLS) for _ in range(REQUESTS)]
    return matrix, vectors


def _run_cluster(bench_scheme, workload, nodes):
    matrix, vectors = workload
    executor = ClusterExecutor(
        bench_scheme,
        matrix,
        config=ClusterConfig(
            nodes=nodes,
            replication=2,
            max_retries=1,
            fault_rate=FAULT_RATE,
            seed=17,
        ),
    )
    requests = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(requests)
    return executor, results


def test_cluster_throughput_scales_with_nodes(bench_scheme, workload):
    """Acceptance: >= 1.8x simulated throughput at 4 nodes vs 1 node
    under 5% node-hang injection, zero dropped requests everywhere."""
    matrix, vectors = workload
    reports = {}
    for nodes in NODE_SIZES:
        executor, results = _run_cluster(bench_scheme, workload, nodes)
        report = executor.report()
        assert report.dropped == 0, f"{nodes}-node run dropped shards"
        # exactness spot-check straight through the failover machinery
        got = results[0].decrypt(bench_scheme)[:ROWS]
        want = matrix.astype(object) @ vectors[0].astype(object)
        assert np.array_equal(got, want)
        reports[nodes] = report
    rows = [
        (
            nodes,
            len(rep.plan["shards"]) if isinstance(rep.plan["shards"], list)
            else rep.plan["shards"],
            f"{rep.shard_retries}",
            f"{rep.rebalance_events}",
            f"{rep.degraded_shards}",
            f"{rep.makespan_cycles:,}",
            f"{rep.goodput_sim_rps:,.1f}",
        )
        for nodes, rep in reports.items()
    ]
    print_table(
        f"Cluster scale-out under {FAULT_RATE:.0%} node-hang injection "
        f"({REQUESTS} reqs, {ROWS}x{COLS} matrix, replication 2)",
        ["nodes", "shards", "retries", "rebalanced", "degraded",
         "makespan cyc", "goodput req/s (sim)"],
        rows,
    )
    ratio = reports[4].goodput_sim_rps / reports[1].goodput_sim_rps
    record_result(
        "cluster",
        {
            "goodput_sim_rps_1n": reports[1].goodput_sim_rps,
            "goodput_sim_rps_2n": reports[2].goodput_sim_rps,
            "goodput_sim_rps_4n": reports[4].goodput_sim_rps,
            "makespan_cycles_1n": reports[1].makespan_cycles,
            "makespan_cycles_4n": reports[4].makespan_cycles,
            "ratio_4n_vs_1n": ratio,
            "shard_retries_4n": reports[4].shard_retries,
            "rebalance_events_4n": reports[4].rebalance_events,
            "degraded_shards_4n": reports[4].degraded_shards,
            "dropped_total": sum(r.dropped for r in reports.values()),
        },
        params={
            "requests": REQUESTS,
            "rows": ROWS,
            "cols": COLS,
            "fault_rate": FAULT_RATE,
            "replication": 2,
            "node_sizes": list(NODE_SIZES),
        },
    )
    assert ratio >= 1.8, (
        f"4-node throughput only {ratio:.2f}x the 1-node figure "
        f"(per-node busy {reports[4].per_node_busy_cycles})"
    )


def test_cluster_survives_heavy_node_hangs(bench_scheme, workload):
    """At a 30% hang rate every shard of every request still reaches a
    terminal outcome — served on a replica or degraded to CPU, never
    dropped — and the answers stay exact."""
    matrix, vectors = workload
    executor = ClusterExecutor(
        bench_scheme,
        matrix,
        config=ClusterConfig(
            nodes=4,
            replication=2,
            max_retries=2,
            fault_rate=0.30,
            seed=23,
        ),
    )
    requests = [executor.encrypt_vector(v) for v in vectors[:4]]
    results = executor.execute_batch(requests)
    report = executor.report()
    assert report.dropped == 0
    assert report.shard_retries > 0
    for result, vector in zip(results, vectors[:4]):
        got = result.decrypt(bench_scheme)[:ROWS]
        want = matrix.astype(object) @ vector.astype(object)
        assert np.array_equal(got, want)
    print_table(
        "Heavy-fault cluster (30% hang rate, 4 nodes)",
        ["executions", "retries", "rebalanced", "degraded"],
        [(report.shard_executions, report.shard_retries,
          report.rebalance_events, report.degraded_shards)],
    )
