"""Partitioning an HMVP matrix into accelerator-sized shards.

One CHAM accelerator processes one ``N = 4096`` tile per pass with two
compute engines (Section IV); the matrices the serving roadmap targets
are far larger.  FAME partitions secure matrix multiply across parallel
FPGA compute units and Chameleon scatters scheme-level work across GPU
workers — this module is the planning half of that structure for the
reproduction:

* :class:`Shard` — one rectangular block of the matrix, at most ``N``
  rows tall, with column boundaries aligned to ``N``-wide ciphertext
  tiles (the unit the vector encryption fixes);
* :class:`PartitionPlan` — a validated row-cut x column-cut grid of
  shards covering the matrix exactly;
* :class:`PartitionPlanner` — builds plans from a cycle-accurate cost
  model (:class:`repro.hw.pipeline.MacroPipeline`, the same simulator
  :class:`repro.hw.runtime.FpgaRuntime` prices jobs with), searching
  row/column band counts for the least estimated makespan over ``K``
  nodes.

The algebra that makes any valid plan exact is in
``docs/ARCHITECTURE.md`` section 9: column cuts must land on ciphertext
tile boundaries because the per-tile rescale is non-linear, and row cuts
are unconstrained because every dot/rescale/extract kernel is
row-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..hw.arch import EngineConfig
from ..hw.netsim import NetworkSimulator
from ..hw.pipeline import MacroPipeline
from ..hw.topology import COORDINATOR, build_topology

__all__ = [
    "CommSpec",
    "PartitionError",
    "Shard",
    "PartitionPlan",
    "PartitionPlanner",
    "balanced_cuts",
]


class PartitionError(ValueError):
    """A partition plan violates the exactness or capacity constraints."""


@dataclass(frozen=True)
class CommSpec:
    """Interconnect parameters the planner prices candidate grids with.

    Mirrors the :class:`repro.cluster.executor.ClusterConfig` network
    knobs plus the ciphertext geometry needed to size payloads without
    touching live arrays: a hoisted scatter tile is two ``(L+1, n)``
    uint64 components, a gathered partial is one ``(L, rows)`` b plus
    one ``(L, rows, n)`` a.  With ``kind="ideal"`` every transfer costs
    zero cycles, so the planner's choices match the comm-free search
    exactly.
    """

    kind: str = "ideal"
    bandwidth: int = 64
    latency: int = 4
    flit_bytes: int = 64
    buffer_flits: int = 4
    arity: int = 2
    #: ciphertext-modulus limb count L (augmented basis is L + 1)
    ct_limbs: int = 2
    coeff_bytes: int = 8

    def scatter_tile_bytes(self, ring_n: int) -> int:
        return 2 * (self.ct_limbs + 1) * ring_n * self.coeff_bytes

    def gather_partial_bytes(self, rows: int, ring_n: int) -> int:
        return self.ct_limbs * rows * (1 + ring_n) * self.coeff_bytes


@dataclass(frozen=True)
class Shard:
    """One rectangular block of the matrix: rows x ring-aligned columns."""

    shard_id: int
    row_band: int
    col_band: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        return self.col_stop - self.col_start

    def col_tiles(self, ring_n: int) -> int:
        """Ciphertext tiles this shard consumes (its scatter fan-in)."""
        return -(-self.cols // ring_n)

    def tile_range(self, ring_n: int) -> Tuple[int, int]:
        """Global ciphertext-tile indices ``[start, stop)`` it reads."""
        return self.col_start // ring_n, -(-self.col_stop // ring_n)

    def submatrix(self, matrix: np.ndarray) -> np.ndarray:
        return matrix[
            self.row_start : self.row_stop, self.col_start : self.col_stop
        ]


def balanced_cuts(extent: int, bands: int) -> Tuple[int, ...]:
    """Boundaries splitting ``extent`` into ``bands`` near-equal bands."""
    if bands < 1 or bands > extent:
        raise PartitionError(
            f"cannot cut extent {extent} into {bands} bands"
        )
    base, extra = divmod(extent, bands)
    cuts = [0]
    for band in range(bands):
        cuts.append(cuts[-1] + base + (1 if band < extra else 0))
    return tuple(cuts)


@dataclass
class PartitionPlan:
    """A validated shard grid covering an ``(rows x cols)`` matrix.

    ``row_cuts`` / ``col_cuts`` include both extremes (``0`` and the
    full extent); ``shards`` is the row-major grid of the resulting
    blocks.  Validity (checked by :meth:`validate`, called from
    ``__post_init__``):

    * cuts are strictly increasing and span the matrix exactly;
    * every row band is at most ``ring_n`` rows (one engine pass);
    * every *interior* column cut is a multiple of ``ring_n`` — the
      per-column-tile rescale is non-linear, so a cut inside a
      ciphertext tile could not be merged back exactly.
    """

    rows: int
    cols: int
    ring_n: int
    row_cuts: Tuple[int, ...]
    col_cuts: Tuple[int, ...]

    def __post_init__(self) -> None:
        self.row_cuts = tuple(int(c) for c in self.row_cuts)
        self.col_cuts = tuple(int(c) for c in self.col_cuts)
        self.validate()
        self.shards: List[Shard] = []
        sid = 0
        for rb in range(len(self.row_cuts) - 1):
            for cb in range(len(self.col_cuts) - 1):
                self.shards.append(
                    Shard(
                        shard_id=sid,
                        row_band=rb,
                        col_band=cb,
                        row_start=self.row_cuts[rb],
                        row_stop=self.row_cuts[rb + 1],
                        col_start=self.col_cuts[cb],
                        col_stop=self.col_cuts[cb + 1],
                    )
                )
                sid += 1

    def validate(self) -> None:
        for name, cuts, extent in (
            ("row", self.row_cuts, self.rows),
            ("col", self.col_cuts, self.cols),
        ):
            if len(cuts) < 2 or cuts[0] != 0 or cuts[-1] != extent:
                raise PartitionError(
                    f"{name}_cuts {cuts} must run 0..{extent}"
                )
            if any(b <= a for a, b in zip(cuts, cuts[1:])):
                raise PartitionError(
                    f"{name}_cuts {cuts} must be strictly increasing"
                )
        for a, b in zip(self.row_cuts, self.row_cuts[1:]):
            if b - a > self.ring_n:
                raise PartitionError(
                    f"row band {a}:{b} exceeds ring degree {self.ring_n}"
                )
        for cut in self.col_cuts[1:-1]:
            if cut % self.ring_n != 0:
                raise PartitionError(
                    f"interior column cut {cut} is not aligned to the "
                    f"ciphertext tile width {self.ring_n}: the per-tile "
                    "rescale is non-linear, so an unaligned cut cannot "
                    "be merged exactly"
                )

    @property
    def row_bands(self) -> int:
        return len(self.row_cuts) - 1

    @property
    def col_bands(self) -> int:
        return len(self.col_cuts) - 1

    @property
    def col_tiles(self) -> int:
        """Ciphertext tiles of the full vector (scatter fan-out width)."""
        return -(-self.cols // self.ring_n)

    def shard_at(self, row_band: int, col_band: int) -> Shard:
        return self.shards[row_band * self.col_bands + col_band]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rows": self.rows,
            "cols": self.cols,
            "ring_n": self.ring_n,
            "row_cuts": list(self.row_cuts),
            "col_cuts": list(self.col_cuts),
            "shards": len(self.shards),
        }


class PartitionPlanner:
    """Cost-model-driven planner over row/column band counts.

    The per-shard cost is the cycle count of the macro-pipeline
    simulator for that shard's ``(rows, col_tiles)`` job — identical to
    what :class:`repro.hw.runtime.FpgaRuntime` charges when the shard
    actually runs, so the planner's makespan estimate and the executor's
    measured makespan share one model.  The search is tiny (row bands x
    column bands, both bounded), and the estimate for a candidate grid
    is an LPT greedy placement over ``nodes`` — the same policy
    :meth:`repro.cluster.placement.ShardPlacement.place` applies.
    """

    #: cap on extra row splits considered beyond the forced minimum
    MAX_EXTRA_ROW_SPLITS = 8

    def __init__(
        self,
        ring_n: int,
        engine: Optional[EngineConfig] = None,
        comm: Optional[CommSpec] = None,
    ) -> None:
        if ring_n < 1:
            raise PartitionError("ring degree must be positive")
        self.ring_n = ring_n
        self._pipeline = MacroPipeline(engine or EngineConfig())
        self._cost_cache: Dict[Tuple[int, int], int] = {}
        #: interconnect pricing; None keeps the historical compute-only
        #: scoring (equivalent to passing ``comm_free=True`` everywhere)
        self.comm = comm
        self._comm_cache: Dict[Tuple, int] = {}

    def shard_cost_cycles(self, rows: int, col_tiles: int = 1) -> int:
        """Simulated device cycles for one ``(rows, col_tiles)`` shard."""
        key = (rows, col_tiles)
        cached = self._cost_cache.get(key)
        if cached is None:
            cached = self._pipeline.simulate_hmvp(rows, col_tiles).total_cycles
            self._cost_cache[key] = cached
        return cached

    def plan_cost_cycles(self, plan: PartitionPlan) -> List[int]:
        """Per-shard cycle costs, in ``plan.shards`` order."""
        return [
            self.shard_cost_cycles(s.rows, s.col_tiles(plan.ring_n))
            for s in plan.shards
        ]

    def cost_by_shard(self, plan: PartitionPlan) -> Dict[int, int]:
        """Per-shard cycle costs keyed by shard id.

        The elastic membership layer balances by these when it re-homes
        shards onto a changed node set — same model the static placement
        and the executor's pricing use, so incremental moves and
        from-scratch plans agree on what "balanced" means.
        """
        return {
            s.shard_id: self.shard_cost_cycles(
                s.rows, s.col_tiles(plan.ring_n)
            )
            for s in plan.shards
        }

    def estimate_makespan(self, plan: PartitionPlan, nodes: int) -> int:
        """LPT greedy lower bound on the plan's *compute* makespan."""
        loads = [0] * max(nodes, 1)
        for cost in sorted(self.plan_cost_cycles(plan), reverse=True):
            idx = min(range(len(loads)), key=loads.__getitem__)
            loads[idx] += cost
        return max(loads)

    def _lpt_assignment(
        self, plan: PartitionPlan, nodes: int
    ) -> Dict[int, int]:
        """Shard id -> node id under the same LPT policy placement uses.

        Mirrors :meth:`repro.cluster.placement.ShardPlacement.place`:
        longest shard first onto the least-loaded node, ties by
        ``(load, node_id)`` then shard id.
        """
        costs = self.plan_cost_cycles(plan)
        loads = {nid: 0 for nid in range(max(nodes, 1))}
        order = sorted(
            range(len(plan.shards)),
            key=lambda i: (-costs[i], plan.shards[i].shard_id),
        )
        assignment: Dict[int, int] = {}
        for idx in order:
            node = min(loads, key=lambda n: (loads[n], n))
            loads[node] += costs[idx]
            assignment[plan.shards[idx].shard_id] = node
        return assignment

    def estimate_comm_cycles(self, plan: PartitionPlan, nodes: int) -> int:
        """Simulated network cycles for one request of this plan.

        Replays the executor's scatter/gather traffic for the candidate
        grid through the *actual* event simulator on the planner's
        :class:`CommSpec` fabric: hoisted ciphertext tiles out to each
        shard's LPT-assigned node (deduplicated per (node, tile), like
        the real scatter), LWE partials back.  Zero without a
        :class:`CommSpec` and on the ideal fabric, so attaching an
        infinite-bandwidth network never changes a planning decision.
        """
        if self.comm is None:
            return 0
        key = (plan.row_cuts, plan.col_cuts, nodes)
        cached = self._comm_cache.get(key)
        if cached is not None:
            return cached
        spec = self.comm
        topology = build_topology(
            spec.kind,
            list(range(max(nodes, 1))),
            bandwidth=spec.bandwidth,
            latency=spec.latency,
            arity=spec.arity,
        )
        sim = NetworkSimulator(
            topology,
            flit_bytes=spec.flit_bytes,
            buffer_flits=spec.buffer_flits,
        )
        assignment = self._lpt_assignment(plan, nodes)
        tile_bytes = spec.scatter_tile_bytes(self.ring_n)
        sim.begin_phase("scatter")
        sent: Set[Tuple[int, int]] = set()
        for shard in plan.shards:
            node = assignment[shard.shard_id]
            for t in range(*shard.tile_range(plan.ring_n)):
                if (node, t) in sent:
                    continue
                sent.add((node, t))
                sim.inject(COORDINATOR, node, tile_bytes)
        cycles = sim.drain()
        sim.begin_phase("gather")
        for shard in plan.shards:
            sim.inject(
                assignment[shard.shard_id],
                COORDINATOR,
                spec.gather_partial_bytes(shard.rows, self.ring_n),
            )
        cycles += sim.drain()
        self._comm_cache[key] = cycles
        return cycles

    def estimate_total_cycles(
        self, plan: PartitionPlan, nodes: int, comm_free: bool = False
    ) -> int:
        """Compute makespan plus the communication term.

        ``comm_free=True`` is the escape hatch recovering the historical
        compute-only score (also the behavior when no :class:`CommSpec`
        is attached).
        """
        total = self.estimate_makespan(plan, nodes)
        if not comm_free:
            total += self.estimate_comm_cycles(plan, nodes)
        return total

    def plan_from_cuts(
        self,
        rows: int,
        cols: int,
        row_cuts: Sequence[int],
        col_cuts: Sequence[int],
    ) -> PartitionPlan:
        """Wrap explicit cuts in a validated plan (test/CLI entry point)."""
        return PartitionPlan(
            rows=rows,
            cols=cols,
            ring_n=self.ring_n,
            row_cuts=tuple(row_cuts),
            col_cuts=tuple(col_cuts),
        )

    def plan(
        self,
        rows: int,
        cols: int,
        nodes: int = 1,
        comm_free: bool = False,
    ) -> PartitionPlan:
        """Search band counts for the least estimated total cycles.

        Row bands range from the forced minimum (``ceil(rows/N)``) up to
        a bounded number of extra splits; column bands range over every
        grouping of the ciphertext tiles.  The score is compute makespan
        plus the :class:`CommSpec` communication term — splitting rows
        multiplies scatter traffic (each shard needs its full ciphertext
        tiles), so grids that win on compute balance alone can lose on a
        bandwidth-limited fabric.  ``comm_free=True`` (or no comm spec)
        recovers the historical compute-only search.  Ties prefer
        *fewer* shards — each extra shard adds merge traffic and (for
        row splits of a pack tile) central pack work the estimate does
        not price.
        """
        if rows < 1 or cols < 1:
            raise PartitionError("matrix extents must be positive")
        if nodes < 1:
            raise PartitionError("need at least one node")
        min_row_bands = -(-rows // self.ring_n)
        max_row_bands = min(rows, min_row_bands + self.MAX_EXTRA_ROW_SPLITS)
        col_tiles = -(-cols // self.ring_n)
        best: Optional[Tuple[int, int, PartitionPlan]] = None
        for row_bands in range(min_row_bands, max_row_bands + 1):
            for col_bands in range(1, col_tiles + 1):
                tile_cuts = balanced_cuts(col_tiles, col_bands)
                col_cuts = tuple(
                    min(cut * self.ring_n, cols) for cut in tile_cuts
                )
                candidate = PartitionPlan(
                    rows=rows,
                    cols=cols,
                    ring_n=self.ring_n,
                    row_cuts=balanced_cuts(rows, row_bands),
                    col_cuts=col_cuts,
                )
                key = (
                    self.estimate_total_cycles(
                        candidate, nodes, comm_free=comm_free
                    ),
                    len(candidate.shards),
                )
                if best is None or key < (best[0], best[1]):
                    best = (key[0], key[1], candidate)
        assert best is not None  # search space is never empty
        return best[2]
