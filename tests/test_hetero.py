"""Tests for the heterogeneous CPU+FPGA schedule simulation (Fig. 1b)."""

import pytest

from repro.hw.arch import ChamConfig
from repro.hw.hetero import ChunkTiming, simulate_hetero


def uniform_chunks(n, encode=0.01, transfer=0.002, compute=0.02):
    return [ChunkTiming(encode, transfer, compute) for _ in range(n)]


def test_empty_schedule():
    sched = simulate_hetero(ChamConfig(), [])
    assert sched.total_s == 0.0
    assert sched.chunks == 0


def test_pipelining_beats_serial():
    cfg = ChamConfig(host_threads=4, engines=2)
    sched = simulate_hetero(cfg, uniform_chunks(16))
    assert sched.total_s < sched.serial_s
    assert sched.overlap_speedup > 1.5


def test_single_chunk_is_serial():
    cfg = ChamConfig()
    c = ChunkTiming(0.01, 0.002, 0.02, 0.001)
    sched = simulate_hetero(cfg, [c])
    assert sched.total_s == pytest.approx(0.033)
    assert sched.overlap_speedup == pytest.approx(1.0)


def test_compute_bound_saturates_engines():
    cfg = ChamConfig(host_threads=8, engines=2)
    chunks = uniform_chunks(32, encode=0.001, transfer=0.0001, compute=0.05)
    sched = simulate_hetero(cfg, chunks)
    # 32 chunks of 50ms across 2 engines ≈ 800ms floor
    assert sched.total_s == pytest.approx(32 * 0.05 / 2, rel=0.1)
    assert sched.fpga_utilization > 0.9


def test_encode_bound_saturates_threads():
    cfg = ChamConfig(host_threads=2, engines=2)
    chunks = uniform_chunks(20, encode=0.05, transfer=0.0001, compute=0.001)
    sched = simulate_hetero(cfg, chunks)
    assert sched.total_s == pytest.approx(20 * 0.05 / 2, rel=0.1)


def test_more_threads_help_encode_bound_workloads():
    chunks = uniform_chunks(16, encode=0.04, compute=0.01)
    two = simulate_hetero(ChamConfig(host_threads=2), chunks)
    eight = simulate_hetero(ChamConfig(host_threads=8), chunks)
    assert eight.total_s < two.total_s


def test_more_engines_help_compute_bound_workloads():
    chunks = uniform_chunks(16, encode=0.001, compute=0.04)
    one = simulate_hetero(ChamConfig(engines=1), chunks)
    two = simulate_hetero(ChamConfig(engines=2), chunks)
    assert two.total_s < one.total_s


def test_offload_fraction():
    chunks = uniform_chunks(8, encode=0.01, compute=0.09)
    sched = simulate_hetero(ChamConfig(), chunks)
    assert sched.offload_fraction == pytest.approx(0.9)


def test_dma_serializes():
    """Transfers share one DMA channel: huge transfers bound the rate."""
    cfg = ChamConfig(host_threads=8, engines=8)
    chunks = uniform_chunks(10, encode=0.0001, transfer=0.05, compute=0.0001)
    sched = simulate_hetero(cfg, chunks)
    assert sched.total_s >= 10 * 0.05
