"""E5 — Fig. 2b: design-space exploration.

Sweeps pipeline split x engines x NTT units x butterfly PEs, scores each
point by throughput and utilization, and checks that the paper's two
published optima sit on (or within 1% of) the Pareto frontier.
"""

import pytest
from conftest import print_table

from repro.hw.dse import enumerate_design_space, pareto_front


@pytest.fixture(scope="module")
def sweep():
    return enumerate_design_space(bench_rows=2048)


def test_figure_2b_scatter(sweep):
    front = pareto_front(sweep)
    front_labels = {p.label for p in front}
    rows = []
    for p in sorted(sweep, key=lambda p: -p.rows_per_sec)[:14]:
        rows.append(
            (
                p.label,
                f"{p.rows_per_sec:,.0f}",
                f"{p.max_utilization_pct:.1f}%",
                "yes" if p.fits else "NO",
                "*" if p.label in front_labels else "",
            )
        )
    print_table(
        "Fig. 2b: design points (top 14 by performance)",
        ["config", "rows/s", "max util", "fits@75%", "frontier"],
        rows,
    )
    assert front


def test_paper_optima(sweep):
    """(9 stages, 6 NTT, 4-PE, 2 engines) and (9 stages, 6 NTT, 8-PE,
    1 engine): equal performance, both feasible, both frontier-grade."""

    def find(stages, engines, units, n_bfu):
        return next(
            p
            for p in sweep
            if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu)
            == (stages, engines, units, n_bfu)
        )

    deployed = find(9, 2, 6, 4)
    alt = find(9, 1, 6, 8)
    print_table(
        "The two published optima",
        ["config", "rows/s", "max util", "fits"],
        [
            (deployed.label, f"{deployed.rows_per_sec:,.0f}", f"{deployed.max_utilization_pct:.1f}%", deployed.fits),
            (alt.label, f"{alt.rows_per_sec:,.0f}", f"{alt.max_utilization_pct:.1f}%", alt.fits),
        ],
    )
    assert deployed.fits and alt.fits
    assert deployed.rows_per_sec == pytest.approx(alt.rows_per_sec, rel=0.02)
    front = pareto_front(sweep)
    best_comparable = max(
        (
            p.rows_per_sec
            for p in front
            if p.max_utilization_pct <= deployed.max_utilization_pct + 0.5
        ),
        default=0.0,
    )
    assert deployed.rows_per_sec >= 0.98 * best_comparable


def test_infeasible_corner(sweep):
    """The maxed-out corner (3 engines, 8 units, 8 PEs) must not fit."""
    big = [
        p
        for p in sweep
        if p.engines == 3 and p.ntt_units_per_group == 8 and p.n_bfu == 8
    ]
    assert big and all(not p.fits for p in big)


def test_reduce_buffer_axis():
    """Ablation: the reduce buffer must hold ~log2(rows) intermediates;
    too small deadlocks the pack tree (DESIGN.md §5)."""
    pts = enumerate_design_space(
        stages_options=(9,),
        engines_options=(1,),
        ntt_units_options=(6,),
        n_bfu_options=(4,),
        buffer_options=(2, 4, 16),
        bench_rows=2048,
    )
    by_buf = {p.reduce_buffer: p for p in pts}
    print_table(
        "Ablation: reduce buffer sizing (2048-row pack)",
        ["entries", "rows/s", "deadlocked"],
        [
            (b, f"{p.rows_per_sec:,.0f}", p.deadlocked)
            for b, p in sorted(by_buf.items())
        ],
    )
    assert by_buf[2].deadlocked
    assert not by_buf[16].deadlocked


@pytest.mark.benchmark(group="dse")
def test_perf_full_sweep(benchmark):
    benchmark(enumerate_design_space, bench_rows=256)
