"""HE-aware static analysis for the CHAM reproduction.

A rule-based AST lint framework plus ~8 codebase-specific rules that
machine-check the paper's arithmetic contracts (CHAM, Ren et al.,
DAC 2023) on every PR:

========  ========================  =====================================
ID        name                      invariant
========  ========================  =====================================
REPRO101  overflow-unsafe-modmul    residue products go through
                                    ``modular.modmul_vec`` (35-bit moduli
                                    overflow uint64 under ``(a*b) % q``)
REPRO102  dtype-discipline          no lossy int64/float casts on residue
                                    arrays; no ``np.mod`` on floats
REPRO103  unseeded-randomness       every RNG in ``src/repro`` takes an
                                    explicit deterministic seed
REPRO104  blocking-call-in-async    the serving layer never blocks the
                                    event loop
REPRO105  bare-modulus-guard        literal moduli respect
                                    ``MAX_MODULUS_BITS``
REPRO106  mutable-default           no shared mutable defaults in
                                    functions or config dataclasses
REPRO107  silent-broad-except       fault-path errors are never silently
                                    swallowed
REPRO108  print-instead-of-obs      library layers report via
                                    ``repro.obs``, not stdout
========  ========================  =====================================

Suppress a finding in place with ``# repro: noqa RULE-ID`` plus a
justification comment.  CLI: ``python -m repro lint [--json] [--ci]
[--rule ID] [paths]``.  See ``docs/ARCHITECTURE.md`` section 8 for the
full catalog and policy.
"""

from .core import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    Rule,
    SourceFile,
    all_rules,
    diagnostics_to_json,
    get_rules,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    register,
    render_text,
)
from .rules import MAX_MODULUS_BITS
from .toolchain import (
    ToolResult,
    repo_root,
    run_ci,
    run_mypy,
    run_ruff,
    tool_available,
)

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Diagnostic",
    "Rule",
    "SourceFile",
    "all_rules",
    "diagnostics_to_json",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_text",
    "MAX_MODULUS_BITS",
    "ToolResult",
    "repo_root",
    "run_ci",
    "run_mypy",
    "run_ruff",
    "tool_available",
]
