"""Extension bench — the multi-scheme / conversion pitch of Section I.

The paper positions CHAM as the first accelerator designed for the
"fast-evolving algorithms" that (a) convert between ciphertext types and
(b) compose B/FV with CKKS.  This bench quantifies the hardware-sharing
claim: a CKKS HMVP issues the *same* operation mix as a BFV HMVP, so one
pipeline serves both — plus the cost of each conversion primitive and
the wire sizes of everything a hybrid protocol exchanges.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.he.bfv import BfvScheme
from repro.he.ckks import CkksScheme
from repro.he.conversion import bfv_to_ckks, ckks_to_bfv
from repro.he.params import toy_params
from repro.he.serialization import rlwe_wire_bytes, serialize_rlwe
from repro.hw.perf import ChamPerfModel
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1


@pytest.fixture(scope="module")
def schemes():
    params = toy_params(n=128, plain_bits=40)
    bfv = BfvScheme(params, seed=61, max_pack=8)
    ckks = CkksScheme(params, seed=62, shared_secret=bfv.secret_key, max_pack=8)
    return bfv, ckks


def test_same_pipeline_serves_both_schemes(schemes, rng):
    """Cycle-level claim: a CKKS HMVP job compiles to the identical
    command stream (and hence identical cycles) as a BFV job of the same
    shape — the scheme lives in the host-side encode/decode only."""
    from repro.hw.isa import compile_hmvp

    bfv_stream = compile_hmvp(4096)
    ckks_stream = compile_hmvp(4096)  # shape is all the hardware sees
    assert len(bfv_stream) == len(ckks_stream)
    cham = ChamPerfModel()
    cycles = cham.hmvp_cycles(4096, 4096)
    rows = [
        ("BFV HMVP 4096x4096", f"{len(bfv_stream):,}", f"{cycles:,}"),
        ("CKKS HMVP 4096x4096", f"{len(ckks_stream):,}", f"{cycles:,}"),
    ]
    print_table(
        "One pipeline, two schemes",
        ["job", "driver commands", "cycles"],
        rows,
    )


def test_functional_equivalence_of_op_mix(schemes, rng):
    """The CKKS dot product performs the same transforms per row."""
    bfv, ckks = schemes
    v = rng.integers(-50, 50, 128)
    ct_b = bfv.encrypt_vector(v)
    out_b = bfv.dot_product(ct_b, v)
    ct_c = ckks.encrypt_coeffs(v.astype(float) / 50.0)
    out_c = ckks.dot_product(ct_c, v.astype(float) / 50.0)
    # both land in the normal basis after the same rescale
    assert out_b.poly_count == out_c.ct.poly_count == 4


def test_conversion_cost_table(schemes, rng):
    """Conversions are cheap relative to one dot product."""
    bfv, ckks = schemes
    ints = rng.integers(-100, 100, 128)
    ct = bfv.encrypt_vector(ints, augmented=False)
    # bfv->ckks: zero arithmetic; ckks->bfv: 2*limbs scalar passes
    rows = [
        ("BFV -> CKKS", "0 (reinterpretation)"),
        ("CKKS -> BFV", "4 coefficient-wise scalar multiplies"),
        ("RLWE -> LWE (extract)", "0 (data movement)"),
        ("LWE -> RLWE (Eq. 3)", "0 (data movement)"),
        ("pack m LWEs", "m-1 PACKTWOLWES (1 automorph + 1 KS each)"),
    ]
    print_table("Conversion primitive costs", ["conversion", "arithmetic"], rows)
    conv = bfv_to_ckks(bfv, ct)
    out = ckks.decrypt_coeffs(conv, 128)
    assert np.max(np.abs(out - ints)) < 1e-3
    back = ckks_to_bfv(bfv, conv)
    dec = bfv.decrypt_coeffs(back, 128)
    assert np.array_equal(np.array([int(x) for x in dec]), ints)


def test_wire_sizes_table(schemes):
    """What a hybrid two-party protocol actually ships (N=4096)."""
    normal = rlwe_wire_bytes(4096, (CHAM_Q0, CHAM_Q1))
    augmented = rlwe_wire_bytes(4096, (CHAM_Q0, CHAM_Q1, CHAM_P))
    rows = [
        ("RLWE ct (normal, 4 polys)", f"{normal / 1024:.1f} KiB"),
        ("RLWE ct (augmented, 6 polys)", f"{augmented / 1024:.1f} KiB"),
        ("cleartext vector (4096 x 40b)", f"{4096 * 5 / 1024:.1f} KiB"),
        ("expansion factor (normal)", f"{normal / (4096 * 5):.1f}x"),
    ]
    print_table("Wire sizes at production parameters", ["object", "size"], rows)
    assert 3 < normal / (4096 * 5) < 5  # the HE bandwidth expansion


@pytest.mark.benchmark(group="multischeme")
def test_perf_bfv_to_ckks(benchmark, schemes, rng):
    bfv, _ = schemes
    ct = bfv.encrypt_vector(rng.integers(-10, 10, 128), augmented=False)
    benchmark(bfv_to_ckks, bfv, ct)


@pytest.mark.benchmark(group="multischeme")
def test_perf_ckks_dot_product(benchmark, schemes, rng):
    _, ckks = schemes
    ct = ckks.encrypt_coeffs(rng.normal(0, 1, 128))
    row = rng.normal(0, 1, 128)
    benchmark(ckks.dot_product, ct, row)


@pytest.mark.benchmark(group="multischeme")
def test_perf_serialize_rlwe(benchmark, schemes, rng):
    bfv, _ = schemes
    ct = bfv.encrypt_vector(rng.integers(-10, 10, 128), augmented=False)
    benchmark(serialize_rlwe, ct)


def test_bgv_joins_the_trio(schemes, rng):
    """The third scheme of the §I trio on the same substrate, with exact
    embedding switches in both directions."""
    from repro.he.bgv import BgvScheme, bgv_to_bfv, conversion_factor

    bfv, _ckks = schemes
    bgv = BgvScheme(bfv.params, seed=63, shared_secret=bfv.secret_key)
    v = rng.integers(-50, 50, 128)
    row = rng.integers(-50, 50, 128)
    dp = bgv.dot_product(bgv.encrypt_vector(v), row)
    got = int(bgv.decrypt_coeffs(dp, 1)[0])
    want = int(np.dot(row.astype(object), v.astype(object)))
    assert got == want
    # cross into BFV with the public message factor
    t = bfv.params.plain_modulus
    f = conversion_factor(bfv.params, "bgv->bfv")
    converted = bgv_to_bfv(bgv, bgv.encrypt_vector(v))
    dec = bfv.decrypt_coeffs(converted, 128)
    expect = (v.astype(object) * f) % t
    half = t // 2
    expect = np.where(expect > half, expect - t, expect)
    assert np.array_equal(
        np.array([int(x) for x in dec], dtype=object), expect
    )
    rows = [
        ("BFV", "exact integers", "native"),
        ("BGV", "exact integers (LSB)", "1 scalar mult each way"),
        ("CKKS", "approximate reals", "exact reinterpretation in"),
    ]
    print_table(
        "Scheme trio on one substrate/key",
        ["scheme", "message domain", "conversion"],
        rows,
    )
