"""Tests for the cycle-level constant-geometry NTT datapath (Fig. 3/4)."""

import numpy as np
import pytest

from repro.hw.arch import NttUnitConfig
from repro.hw.ntt_datapath import BankAccessLog, NttDatapathSim
from repro.math.cg_ntt import CgNtt
from repro.math.primes import CHAM_P, CHAM_Q0


@pytest.fixture(scope="module")
def sim64():
    return NttDatapathSim(NttUnitConfig(n=64, n_bfu=4, ram_banks=8), CHAM_Q0)


def test_datapath_is_arithmetically_exact(sim64, rng):
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    out, _report = sim64.forward(a)
    assert np.array_equal(out, CgNtt(64, CHAM_Q0).forward(a))


def test_inverse_roundtrip(sim64, rng):
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    out, _ = sim64.forward(a)
    assert np.array_equal(sim64.inverse(out), a)


def test_schedule_is_legal(sim64, rng):
    """1R1W bank ports and ping-pong discipline are never violated."""
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, report = sim64.forward(a)
    assert report.log.violations() == []


def test_constant_geometry_single_routing_pattern(sim64, rng):
    """The bank->BFU routing never changes: the paper's argument against
    HEAX's stage-variant LUT multiplexers (Section IV-A1)."""
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, report = sim64.forward(a)
    assert len(report.routing_patterns) == 1
    assert report.is_constant_geometry


def test_steady_cycles_match_formula(sim64, rng):
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, report = sim64.forward(a)
    assert report.steady_cycles == (32 * 6) // 4
    # total includes only the small per-stage drain on top
    assert report.steady_cycles <= report.cycles <= report.steady_cycles + 2 * 6


def test_production_point_is_6144():
    unit = NttUnitConfig(n=4096, n_bfu=4, ram_banks=8)
    sim = NttDatapathSim(unit, CHAM_P)
    rng = np.random.default_rng(0)
    a = rng.integers(0, CHAM_P, 4096, dtype=np.uint64)
    out, report = sim.forward(a)
    assert report.steady_cycles == 6144  # Table III
    assert np.array_equal(out, CgNtt(4096, CHAM_P).forward(a))
    assert report.log.violations() == []


def test_twiddle_rom_words(sim64):
    # (n/2 * log2 n) / n_bfu words per BFU ROM
    assert sim64.twiddle_rom_words() == 32 * 6 // 4


def test_bank_log_detects_conflicts():
    log = BankAccessLog()
    log.reads.append((0, 0, 3, 1))
    log.reads.append((0, 0, 3, 2))  # same cycle, same bank: conflict
    assert any("read port" in v for v in log.violations())
    log2 = BankAccessLog()
    log2.reads.append((5, 0, 1, 0))
    log2.writes.append((5, 0, 2, 0))  # same cycle, same RAM set: ping-pong
    assert any("ping-pong" in v for v in log2.violations())


def test_write_conflicts_detected():
    log = BankAccessLog()
    log.writes.append((1, 1, 0, 0))
    log.writes.append((1, 1, 0, 4))
    assert any("write port" in v for v in log.violations())


def test_rejects_incompatible_geometry():
    with pytest.raises(ValueError):
        NttDatapathSim(NttUnitConfig(n=64, n_bfu=4, ram_banks=6), CHAM_Q0)


def test_rejects_bad_input_shape(sim64):
    with pytest.raises(ValueError):
        sim64.forward(np.zeros(32, dtype=np.uint64))


def test_reads_alternate_up_and_down(sim64, rng):
    """First cycle reads the low half row, second the high half row."""
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, report = sim64.forward(a)
    first_cycle_addrs = sorted(
        addr for cyc, _s, _b, addr in report.log.reads if cyc == 0
    )
    second_cycle_addrs = sorted(
        addr for cyc, _s, _b, addr in report.log.reads if cyc == 1
    )
    assert first_cycle_addrs == [0] * 8  # coefficients 0..7 live at addr 0
    assert second_cycle_addrs == [4] * 8  # coefficients 32..39 at addr 4


def test_inverse_with_report_roundtrip(sim64, rng):
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    fwd, _ = sim64.forward(a)
    back, report = sim64.inverse_with_report(fwd)
    assert np.array_equal(back, a)
    assert report.log.violations() == []
    assert len(report.routing_patterns) == 1
    assert report.steady_cycles == (32 * 6) // 4


def test_inverse_report_matches_forward_cycles(sim64, rng):
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, fwd_rep = sim64.forward(a)
    _, inv_rep = sim64.inverse_with_report(a)
    assert inv_rep.cycles == fwd_rep.cycles  # mirrored schedule, same time


def test_inverse_reads_consecutive_rows(sim64, rng):
    """INTT reads two consecutive output rows per group (mirrored I/O)."""
    a = rng.integers(0, CHAM_Q0, 64, dtype=np.uint64)
    _, report = sim64.inverse_with_report(a)
    first = sorted(addr for cyc, _s, _b, addr in report.log.reads if cyc == 0)
    second = sorted(addr for cyc, _s, _b, addr in report.log.reads if cyc == 1)
    assert first == [0] * 8
    assert second == [1] * 8


def test_inverse_rejects_bad_shape(sim64):
    with pytest.raises(ValueError):
        sim64.inverse_with_report(np.zeros(32, dtype=np.uint64))
