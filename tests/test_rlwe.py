"""Tests for RLWE ciphertexts and homomorphic operations."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.noise import absolute_noise_bits
from repro.he.rlwe import RlweCiphertext, decrypt, encrypt, encrypt_pk
from repro.math.polynomial import automorph


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


def rand_pt(enc, rng, lo=-(1 << 30), hi=1 << 30):
    return enc.encode_coeffs(rng.integers(lo, hi, enc.n))


@pytest.mark.parametrize("augmented", [True, False])
def test_sym_encrypt_decrypt(ctx128, sk128, enc, rng, augmented):
    pt = rand_pt(enc, rng)
    ct = encrypt(ctx128, sk128, pt, augmented=augmented)
    assert decrypt(ctx128, sk128, ct) == pt
    assert ct.is_augmented == augmented
    assert ct.poly_count == (6 if augmented else 4)


@pytest.mark.parametrize("augmented", [True, False])
def test_pk_encrypt_decrypt(ctx128, sk128, pk128, enc, rng, augmented):
    pt = rand_pt(enc, rng)
    ct = encrypt_pk(ctx128, pk128, pt, augmented=augmented)
    assert decrypt(ctx128, sk128, ct) == pt


def test_decrypt_with_wrong_key_garbles(ctx128, sk128, enc, rng):
    from repro.he.keys import generate_secret_key

    pt = rand_pt(enc, rng)
    ct = encrypt(ctx128, sk128, pt)
    other = generate_secret_key(ctx128)
    assert decrypt(ctx128, other, ct) != pt


def test_homomorphic_addition(ctx128, sk128, enc, rng):
    a = rng.integers(-1000, 1000, 128)
    b = rng.integers(-1000, 1000, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a)) + encrypt(
        ctx128, sk128, enc.encode_coeffs(b)
    )
    assert np.array_equal(decrypt(ctx128, sk128, ct).centered(), a + b)


def test_homomorphic_subtraction_and_negation(ctx128, sk128, enc, rng):
    a = rng.integers(-1000, 1000, 128)
    b = rng.integers(-1000, 1000, 128)
    ct_a = encrypt(ctx128, sk128, enc.encode_coeffs(a))
    ct_b = encrypt(ctx128, sk128, enc.encode_coeffs(b))
    assert np.array_equal(decrypt(ctx128, sk128, ct_a - ct_b).centered(), a - b)
    assert np.array_equal(decrypt(ctx128, sk128, -ct_a).centered(), -a)


def test_add_plain(ctx128, sk128, enc, rng):
    a = rng.integers(-1000, 1000, 128)
    b = rng.integers(-1000, 1000, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a))
    out = ct.add_plain(enc.encode_coeffs(b))
    assert np.array_equal(decrypt(ctx128, sk128, out).centered(), a + b)


def test_multiply_plain_polynomial_semantics(ctx128, sk128, enc, rng):
    """pt-ct multiply is a negacyclic polynomial product mod t."""
    from repro.math.ntt import negacyclic_convolution_schoolbook

    a = rng.integers(-100, 100, 128)
    b = rng.integers(-100, 100, 128)
    pt_a = enc.encode_coeffs(a)
    pt_b = enc.encode_coeffs(b)
    ct = encrypt(ctx128, sk128, pt_a, augmented=True)
    out = ct.multiply_plain(pt_b).rescale()
    want = negacyclic_convolution_schoolbook(
        pt_a.coeffs, pt_b.coeffs, ctx128.t
    )
    assert np.array_equal(decrypt(ctx128, sk128, out).coeffs, want)


def test_multiply_scalar(ctx128, sk128, enc, rng):
    a = rng.integers(-100, 100, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a))
    out = ct.multiply_scalar(7)
    assert np.array_equal(decrypt(ctx128, sk128, out).centered(), 7 * a)


def test_multiply_monomial_noise_free(ctx128, sk128, enc, rng):
    a = rng.integers(-100, 100, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a))
    before = absolute_noise_bits(ctx128, sk128, ct)
    out = ct.multiply_monomial(5)
    after = absolute_noise_bits(ctx128, sk128, out)
    assert after == pytest.approx(before, abs=0.6)
    # plaintext rotated negacyclically
    want = np.concatenate([-a[-5:], a[:-5]])
    assert np.array_equal(decrypt(ctx128, sk128, out).centered(), want)


def test_automorph_raw_decrypts_under_rotated_key(ctx128, sk128, enc, rng):
    a = rng.integers(-100, 100, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a))
    g = 5
    rotated = ct.automorph_raw(g)
    rotated_key = sk128.automorphed(g)
    got = decrypt(ctx128, rotated_key, rotated)
    want = automorph(enc.encode_coeffs(a).coeffs, g, ctx128.t)
    assert np.array_equal(got.coeffs, want)


def test_rescale_reduces_basis(ctx128, sk128, enc, rng):
    pt = rand_pt(enc, rng)
    ct = encrypt(ctx128, sk128, pt, augmented=True)
    res = ct.rescale()
    assert not res.is_augmented
    assert res.poly_count == 4
    assert decrypt(ctx128, sk128, res) == pt


def test_rescale_rejects_normal_basis(ctx128, sk128, enc, rng):
    ct = encrypt(ctx128, sk128, rand_pt(enc, rng), augmented=False)
    with pytest.raises(ValueError):
        ct.rescale()


def test_basis_mismatch_raises(ctx128, sk128, enc, rng):
    pt = rand_pt(enc, rng)
    aug = encrypt(ctx128, sk128, pt, augmented=True)
    norm = encrypt(ctx128, sk128, pt, augmented=False)
    with pytest.raises(ValueError):
        _ = aug + norm


def test_zero_ciphertext_is_transparent(ctx128, sk128, enc):
    z = RlweCiphertext.zero(ctx128, ctx128.ct_basis)
    pt = decrypt(ctx128, sk128, z)
    assert (pt.coeffs == 0).all()
    assert absolute_noise_bits(ctx128, sk128, z) == 0.0


def test_zero_plus_real_preserves_message(ctx128, sk128, enc, rng):
    a = rng.integers(-100, 100, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False)
    z = RlweCiphertext.zero(ctx128, ctx128.ct_basis)
    assert np.array_equal(decrypt(ctx128, sk128, ct + z).centered(), a)


def test_shape_validation(ctx128):
    with pytest.raises(ValueError):
        RlweCiphertext(
            ctx128,
            ctx128.ct_basis,
            np.zeros((3, 128), np.uint64),
            np.zeros((2, 128), np.uint64),
        )


def test_copy_is_independent(ctx128, sk128, enc, rng):
    ct = encrypt(ctx128, sk128, rand_pt(enc, rng))
    cp = ct.copy()
    cp.c0[:] = 0
    assert not np.array_equal(ct.c0, cp.c0)


def test_large_plaintext_values_full_range(ctx128, sk128, enc, rng):
    """Coefficients across the entire plaintext space survive (exact
    scaling; the classical floor(Q/t) embedding would fail here)."""
    t = ctx128.t
    vals = rng.integers(0, t, 128, dtype=np.uint64).astype(object)
    pt = enc.encode_coeffs(vals)
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    assert decrypt(ctx128, sk128, ct) == pt


def test_flood_noise_preserves_message(ctx128, sk128, enc, rng):
    """Noise flooding (circuit privacy) raises noise to the target level
    without disturbing decryption."""
    vals = rng.integers(-100, 100, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=False)
    flooded = ct.flood_noise(20)
    assert np.array_equal(decrypt(ctx128, sk128, flooded).centered(), vals)
    before = absolute_noise_bits(ctx128, sk128, ct)
    after = absolute_noise_bits(ctx128, sk128, flooded)
    assert after > before + 10
    assert 18 <= after <= 22


def test_flood_noise_hides_computation_noise(ctx128, sk128, enc, rng):
    """After flooding, two ciphertexts produced by different computations
    have statistically indistinguishable noise magnitudes."""
    v = rng.integers(-50, 50, 128)
    row_small = np.zeros(128, dtype=np.int64)
    row_small[0] = 1
    row_big = rng.integers(-50, 50, 128)
    ct = encrypt(ctx128, sk128, enc.encode_vector(v), augmented=True)
    a = ct.multiply_plain(enc.encode_row(row_small)).rescale().flood_noise(25)
    b = ct.multiply_plain(enc.encode_row(row_big)).rescale().flood_noise(25)
    bits_a = absolute_noise_bits(ctx128, sk128, a)
    bits_b = absolute_noise_bits(ctx128, sk128, b)
    assert abs(bits_a - bits_b) < 1.5


# -- NTT-domain plaintexts (the matrix-resident representation) ---------------


def test_multiply_plain_ntt_matches_multiply_plain(ctx128, sk128, enc, rng):
    """The cached-transform product is bit-identical to multiply_plain."""
    from repro.he.rlwe import NttPlaintext

    v = rng.integers(-100, 100, 128)
    row = rng.integers(-50, 50, 128)
    ct = encrypt(ctx128, sk128, enc.encode_vector(v), augmented=True)
    pt_row = enc.encode_row(row)
    ref = ct.multiply_plain(pt_row)
    nt = NttPlaintext.from_plaintext(ctx128, pt_row, ct.basis)
    got = ct.multiply_plain_ntt(nt)
    assert np.array_equal(got.c0, ref.c0)
    assert np.array_equal(got.c1, ref.c1)
    # and with the ciphertext transform hoisted explicitly
    hoisted = ct.ntt_components()
    got2 = ct.multiply_plain_ntt(nt, comp_ntts=hoisted)
    assert np.array_equal(got2.c0, ref.c0)
    assert np.array_equal(got2.c1, ref.c1)


def test_ntt_plaintext_is_frozen_and_validated(ctx128, enc, rng):
    from repro.he.rlwe import NttPlaintext

    nt = NttPlaintext.from_plaintext(
        ctx128, enc.encode_row(rng.integers(-5, 5, 128)), ctx128.aug_basis
    )
    import pytest as _pytest

    with _pytest.raises(ValueError):
        nt.limbs[0, 0] = 1
    with _pytest.raises(ValueError, match="incompatible"):
        NttPlaintext(ctx128.aug_basis, np.zeros((1, 4), dtype=np.uint64))


def test_multiply_plain_ntt_basis_mismatch(ctx128, sk128, enc, rng):
    from repro.he.rlwe import NttPlaintext

    ct = encrypt(ctx128, sk128, enc.encode_coeffs([1]), augmented=True)
    nt = NttPlaintext.from_plaintext(
        ctx128, enc.encode_coeffs([2]), ctx128.ct_basis
    )
    import pytest as _pytest

    with _pytest.raises(ValueError, match="basis mismatch"):
        ct.multiply_plain_ntt(nt)
