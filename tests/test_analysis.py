"""Tests for the HE-aware static-analysis subsystem (repro.analysis).

Each REPRO1xx rule gets three fixtures: a positive snippet that must
fire, a clean snippet that must not, and a noqa-suppressed snippet.
The suite ends with the self-check the CI gate depends on: the
repository's own ``src/repro`` tree is clean under every rule.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis import (
    Diagnostic,
    SourceFile,
    all_rules,
    diagnostics_to_json,
    get_rules,
    lint_paths,
    lint_source,
    render_text,
)
from repro.analysis.core import SYNTAX_RULE_ID
from repro.analysis.rules import MAX_MODULUS_BITS
from repro.analysis.toolchain import ToolResult, repo_root, run_ci, tool_available

REPO_ROOT = Path(__file__).resolve().parents[1]


def ids_of(diags):
    return [d.rule_id for d in diags]


def run_rule(rule_id: str, text: str, filename: str = "snippet.py"):
    return lint_source(text, filename, rules=get_rules([rule_id]))


# ---------------------------------------------------------------------------
# framework


class TestFramework:
    def test_registry_is_complete_and_sorted(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert ids == sorted(ids)
        pattern = [f"REPRO10{i}" for i in range(1, 9)]
        dataflow = [f"REPRO20{i}" for i in range(1, 7)]
        locks = ["REPRO210", "REPRO211"]
        assert ids == pattern + dataflow + locks
        for rule in rules:
            assert rule.name and rule.rationale and rule.severity

    def test_get_rules_unknown_id_raises(self):
        with pytest.raises(KeyError, match="REPRO999"):
            get_rules(["REPRO999"])

    def test_get_rules_case_insensitive(self):
        (rule,) = get_rules(["repro101"])
        assert rule.id == "REPRO101"

    def test_syntax_error_becomes_diagnostic(self):
        diags = lint_source("def broken(:\n", "bad.py")
        assert ids_of(diags) == [SYNTAX_RULE_ID]
        assert "does not parse" in diags[0].message

    def test_noqa_bare_blankets_all_rules(self):
        src = SourceFile("x = 1  # repro: noqa\n", "f.py")
        assert src.suppressed(1, "REPRO101")
        assert src.suppressed(1, "REPRO999")

    def test_noqa_specific_ids_and_commas(self):
        src = SourceFile(
            "x = 1  # repro: noqa REPRO101, REPRO103\n", "f.py"
        )
        assert src.suppressed(1, "REPRO101")
        assert src.suppressed(1, "REPRO103")
        assert not src.suppressed(1, "REPRO102")
        assert not src.suppressed(2, "REPRO101")

    def test_noqa_trailing_prose_does_not_widen(self):
        src = SourceFile(
            "y = a * b % q  # repro: noqa REPRO101 (big ints)\n", "f.py"
        )
        assert src.suppressed(1, "REPRO101")
        assert not src.suppressed(1, "REPRO102")

    def test_render_text_and_json_roundtrip(self):
        diags = [
            Diagnostic("a.py", 3, 1, "REPRO101", "error", "boom"),
            Diagnostic("b.py", 1, 1, "REPRO106", "warning", "shared"),
        ]
        text = render_text(diags)
        assert "a.py:3:1: REPRO101 [error] boom" in text
        assert "1 error(s), 1 warning(s) in 2 file(s)" in text
        payload = diagnostics_to_json(diags)
        assert payload["summary"] == {"errors": 1, "warnings": 1, "files": 2}
        assert payload["diagnostics"][0]["rule"] == "REPRO101"
        json.dumps(payload)  # must be serializable as-is

    def test_render_text_clean(self):
        assert "no findings" in render_text([])


# ---------------------------------------------------------------------------
# REPRO101 — overflow-unsafe modmul


class TestOverflowUnsafeModmul:
    def test_flags_raw_multiply_then_mod(self):
        diags = run_rule("REPRO101", "c = (a * b) % q\n")
        assert ids_of(diags) == ["REPRO101"]
        assert "modmul_vec" in diags[0].message

    def test_flags_np_mod_form(self):
        diags = run_rule("REPRO101", "c = np.mod(a * b, q)\n")
        assert ids_of(diags) == ["REPRO101"]

    def test_clean_when_routed_through_helper(self):
        assert run_rule("REPRO101", "c = modmul_vec(a, b, q)\n") == []

    def test_const_operand_is_index_arithmetic(self):
        # (2 * k) % banks — the NTT datapath's bank-interleave math
        assert run_rule("REPRO101", "idx = (2 * k) % banks\n") == []

    def test_int_coerced_operand_is_exact(self):
        assert run_rule("REPRO101", "c = (int(a) * b) % q\n") == []

    def test_int_wrapped_mod_is_exact(self):
        assert run_rule("REPRO101", "c = int(a * b % q)\n") == []

    def test_noqa_suppresses(self):
        text = "c = (a * b) % q  # repro: noqa REPRO101\n"
        assert run_rule("REPRO101", text) == []

    def test_scope_excludes_modular_and_tests(self):
        (rule,) = get_rules(["REPRO101"])
        assert not rule.applies_to("src/repro/math/modular.py")
        assert not rule.applies_to("tests/test_modular.py")
        assert rule.applies_to("src/repro/he/rlwe.py")


# ---------------------------------------------------------------------------
# REPRO102 — dtype discipline


class TestDtypeDiscipline:
    def test_flags_lossy_astype_on_residue_array(self):
        diags = run_rule("REPRO102", "x = coeffs.astype(np.int64)\n")
        assert ids_of(diags) == ["REPRO102"]
        assert "object dtype" in diags[0].message

    def test_flags_np_mod_on_float(self):
        diags = run_rule(
            "REPRO102", "x = np.mod(vals.astype(np.float64), q)\n"
        )
        assert ids_of(diags) == ["REPRO102"]

    def test_clean_object_dtype(self):
        assert run_rule("REPRO102", "x = coeffs.astype(object)\n") == []

    def test_rounded_cast_is_ckks_idiom(self):
        text = "x = np.rint(coeffs * scale).astype(np.int64)\n"
        assert run_rule("REPRO102", text) == []

    def test_non_residue_receiver_is_fine(self):
        assert run_rule("REPRO102", "x = table.astype(np.int64)\n") == []

    def test_noqa_suppresses(self):
        text = "x = coeffs.astype(np.int64)  # repro: noqa REPRO102\n"
        assert run_rule("REPRO102", text) == []

    def test_scope_is_math_and_he_only(self):
        (rule,) = get_rules(["REPRO102"])
        assert rule.applies_to("src/repro/he/encoder.py")
        assert rule.applies_to("src/repro/math/rns.py")
        assert not rule.applies_to("src/repro/hw/ntt_datapath.py")
        assert not rule.applies_to("tests/test_encoder.py")


# ---------------------------------------------------------------------------
# REPRO103 — unseeded randomness


class TestUnseededRandomness:
    def test_flags_unseeded_default_rng(self):
        diags = run_rule("REPRO103", "rng = np.random.default_rng()\n")
        assert ids_of(diags) == ["REPRO103"]

    def test_flags_none_seed(self):
        diags = run_rule("REPRO103", "rng = random.Random(None)\n")
        assert ids_of(diags) == ["REPRO103"]
        assert "None" in diags[0].message

    def test_flags_conditional_none_seed(self):
        # the exact paillier.py shape this rule caught in this PR
        text = "rng = random.Random(None if seed is None else seed + 1)\n"
        assert ids_of(run_rule("REPRO103", text)) == ["REPRO103"]

    def test_flags_entropy_seed(self):
        diags = run_rule(
            "REPRO103", "rng = np.random.default_rng(int(time.time()))\n"
        )
        assert ids_of(diags) == ["REPRO103"]

    def test_flags_legacy_global_np_random(self):
        diags = run_rule("REPRO103", "x = np.random.randint(0, 10)\n")
        assert ids_of(diags) == ["REPRO103"]

    def test_flags_module_level_stdlib_random(self):
        diags = run_rule("REPRO103", "x = random.randrange(2, n)\n")
        assert ids_of(diags) == ["REPRO103"]

    def test_flags_system_random(self):
        diags = run_rule("REPRO103", "rng = random.SystemRandom()\n")
        assert ids_of(diags) == ["REPRO103"]

    def test_clean_seeded_generators(self):
        clean = (
            "a = np.random.default_rng(0)\n"
            "b = np.random.default_rng(seed)\n"
            "c = random.Random(0xC4A)\n"
        )
        assert run_rule("REPRO103", clean) == []

    def test_noqa_suppresses(self):
        text = "rng = np.random.default_rng()  # repro: noqa REPRO103\n"
        assert run_rule("REPRO103", text) == []

    def test_scope_excludes_tests(self):
        (rule,) = get_rules(["REPRO103"])
        assert not rule.applies_to("tests/test_rlwe.py")
        assert not rule.applies_to("tests/conftest.py")
        assert rule.applies_to("src/repro/he/context.py")


# ---------------------------------------------------------------------------
# REPRO104 — blocking calls in async def


ASYNC_TEMPLATE = """\
async def handler(req):
    {body}
    return req
"""


class TestBlockingCallInAsync:
    def test_flags_time_sleep(self):
        text = ASYNC_TEMPLATE.format(body="time.sleep(0.1)")
        diags = run_rule("REPRO104", text)
        assert ids_of(diags) == ["REPRO104"]
        assert "asyncio.sleep" in diags[0].message

    def test_flags_sync_open_and_path_io(self):
        text = ASYNC_TEMPLATE.format(
            body="data = open('f').read(); cfg = p.read_text()"
        )
        assert ids_of(run_rule("REPRO104", text)) == ["REPRO104", "REPRO104"]

    def test_flags_sync_poll(self):
        text = ASYNC_TEMPLATE.format(body="status = runtime.poll(job)")
        diags = run_rule("REPRO104", text)
        assert ids_of(diags) == ["REPRO104"]
        assert "poll_async" in diags[0].message

    def test_clean_awaited_equivalents(self):
        text = (
            "async def handler(req):\n"
            "    await asyncio.sleep(0.1)\n"
            "    out = await loop.run_in_executor(None, work)\n"
            "    status = await runtime.poll_async(job)\n"
            "    return out\n"
        )
        assert run_rule("REPRO104", text) == []

    def test_sync_function_is_out_of_scope(self):
        assert run_rule("REPRO104", "def f():\n    time.sleep(1)\n") == []

    def test_nested_sync_def_resets_context(self):
        text = (
            "async def handler(req):\n"
            "    def worker():\n"
            "        time.sleep(1)\n"
            "    return worker\n"
        )
        assert run_rule("REPRO104", text) == []

    def test_noqa_suppresses(self):
        text = ASYNC_TEMPLATE.format(
            body="time.sleep(0.1)  # repro: noqa REPRO104"
        )
        assert run_rule("REPRO104", text) == []


# ---------------------------------------------------------------------------
# REPRO105 — bare modulus vs MAX_MODULUS_BITS


class TestUnvalidatedModulus:
    def test_flags_oversized_literal_modulus(self):
        text = "y = modmul_vec(a, b, 2**61 - 1)\n"
        diags = run_rule("REPRO105", text)
        assert ids_of(diags) == ["REPRO105"]
        assert "61-bit" in diags[0].message

    def test_flags_keyword_modulus(self):
        text = "y = modmul_vec(a, b, q=1 << 50)\n"
        assert ids_of(run_rule("REPRO105", text)) == ["REPRO105"]

    def test_flags_reducer_constructor(self):
        text = "r = LowHammingModulus(2**62 + 2**23 + 1)\n"
        assert ids_of(run_rule("REPRO105", text)) == ["REPRO105"]

    def test_clean_paper_moduli(self):
        clean = (
            "a = modmul_vec(x, y, 2**34 + 2**27 + 1)\n"
            "b = modmul_vec(x, y, 2**38 + 2**23 + 1)\n"
        )
        assert run_rule("REPRO105", clean) == []

    def test_non_literal_modulus_left_to_runtime_guard(self):
        assert run_rule("REPRO105", "a = modmul_vec(x, y, q)\n") == []

    def test_noqa_suppresses(self):
        text = "y = modmul_vec(a, b, 1 << 50)  # repro: noqa REPRO105\n"
        assert run_rule("REPRO105", text) == []

    def test_limit_matches_runtime_constant(self):
        from repro.math import modular

        assert MAX_MODULUS_BITS == modular.MAX_MODULUS_BITS


# ---------------------------------------------------------------------------
# REPRO106 — mutable defaults


class TestMutableDefault:
    def test_flags_list_default(self):
        diags = run_rule("REPRO106", "def f(x, acc=[]):\n    return acc\n")
        assert ids_of(diags) == ["REPRO106"]

    def test_flags_dict_and_call_factories(self):
        text = "def f(cfg={}, tags=list()):\n    return cfg\n"
        assert ids_of(run_rule("REPRO106", text)) == ["REPRO106", "REPRO106"]

    def test_flags_dataclass_field_literal(self):
        text = (
            "@dataclass\n"
            "class C:\n"
            "    entries: list = []\n"
        )
        assert ids_of(run_rule("REPRO106", text)) == ["REPRO106"]

    def test_flags_field_default_mutable(self):
        text = (
            "@dataclass\n"
            "class C:\n"
            "    entries: list = field(default=[])\n"
        )
        assert ids_of(run_rule("REPRO106", text)) == ["REPRO106"]

    def test_clean_none_and_default_factory(self):
        clean = (
            "def f(x, acc=None):\n    return acc\n"
            "@dataclass\n"
            "class C:\n"
            "    entries: list = field(default_factory=list)\n"
            "    count: int = 0\n"
        )
        assert run_rule("REPRO106", clean) == []

    def test_plain_class_attribute_not_flagged(self):
        # only dataclass fields are per-instance-looking shared state
        text = "class C:\n    registry = {}\n"
        assert run_rule("REPRO106", text) == []

    def test_noqa_suppresses(self):
        text = "def f(acc=[]):  # repro: noqa REPRO106\n    return acc\n"
        assert run_rule("REPRO106", text) == []


# ---------------------------------------------------------------------------
# REPRO107 — silent broad except


class TestSilentBroadExcept:
    def test_flags_except_exception_pass(self):
        text = "try:\n    step()\nexcept Exception:\n    pass\n"
        diags = run_rule("REPRO107", text)
        assert ids_of(diags) == ["REPRO107"]

    def test_flags_bare_except_and_tuple(self):
        text = (
            "try:\n    a()\nexcept:\n    pass\n"
            "try:\n    b()\nexcept (ValueError, Exception):\n    continue\n"
        )
        # wrap the continue in a loop so the snippet parses
        text = "for _ in r:\n    " + text.replace("\n", "\n    ").rstrip() + "\n"
        assert ids_of(run_rule("REPRO107", text)) == ["REPRO107", "REPRO107"]

    def test_clean_when_handled_or_specific(self):
        clean = (
            "try:\n    step()\nexcept Exception as exc:\n"
            "    obs.inc('serve.errors')\n    raise\n"
            "try:\n    step()\nexcept ValueError:\n    pass\n"
        )
        assert run_rule("REPRO107", clean) == []

    def test_noqa_suppresses(self):
        text = (
            "try:\n    step()\n"
            "except Exception:  # repro: noqa REPRO107\n    pass\n"
        )
        assert run_rule("REPRO107", text) == []


# ---------------------------------------------------------------------------
# REPRO108 — print instead of obs


class TestPrintInsteadOfObs:
    def test_flags_print_in_library(self):
        diags = run_rule("REPRO108", "print('done', flush=True)\n")
        assert ids_of(diags) == ["REPRO108"]
        assert "repro.obs" in diags[0].message

    def test_attribute_named_print_not_flagged(self):
        # only the builtin; `console.print(...)` is someone else's API
        assert run_rule("REPRO108", "console.print('x')\n") == []

    def test_scope_exempts_presentation_layer(self):
        (rule,) = get_rules(["REPRO108"])
        assert not rule.applies_to("src/repro/cli.py")
        assert not rule.applies_to("src/repro/report.py")
        assert not rule.applies_to("src/repro/__main__.py")
        assert rule.applies_to("src/repro/he/bfv.py")

    def test_noqa_suppresses(self):
        assert run_rule("REPRO108", "print(x)  # repro: noqa REPRO108\n") == []


# ---------------------------------------------------------------------------
# toolchain gating


class TestToolchain:
    def test_repo_root_finds_pyproject(self):
        root = repo_root()
        assert (root / "pyproject.toml").is_file()
        assert root == REPO_ROOT

    def test_tool_available_on_known_modules(self):
        assert tool_available("json")
        assert not tool_available("definitely_not_a_module_xyz")

    def test_skipped_tool_counts_as_ok(self):
        assert ToolResult("mypy", "skipped", "not installed").ok
        assert ToolResult("ruff", "ok").ok
        assert not ToolResult("mypy", "failed", "boom").ok

    def test_run_ci_is_clean_on_this_checkout(self):
        code, report, text = run_ci(REPO_ROOT)
        assert code == 0, text
        assert report["ok"] is True
        assert report["summary"]["errors"] == 0
        names = {t["name"] for t in report["tools"]}
        assert names == {"ruff", "mypy"}
        for tool in report["tools"]:
            assert tool["status"] in ("ok", "skipped"), tool
        assert "PASS" in text


# ---------------------------------------------------------------------------
# self-check: the repository's own tree is clean


class TestSelfCheck:
    def test_src_repro_is_clean_under_all_rules(self):
        diags = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert diags == [], render_text(diags)

    def test_cli_lint_exits_zero_on_src(self, capsys):
        from repro.cli import main

        assert main(["lint"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_lint_json_reports_findings(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("c = (a * b) % q\n")
        report_file = tmp_path / "report.json"
        code = main(
            ["lint", str(bad), "--json", "--json-out", str(report_file)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "REPRO101"
        on_disk = json.loads(report_file.read_text())
        assert on_disk == payload

    def test_cli_rule_filter(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "bad.py"
        bad.write_text("c = (a * b) % q\n")
        # filtering to an unrelated rule must turn the finding off
        assert main(["lint", str(bad), "--rule", "REPRO108"]) == 0
        assert main(["lint", str(bad), "--rule", "repro101"]) == 1

    def test_cli_list_rules(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert f"REPRO10{i}" in out
