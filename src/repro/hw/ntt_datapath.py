"""Cycle-level model of the constant-geometry NTT datapath (Fig. 3/4).

The unit owns two sets of ``ram_banks`` single-read single-write RAM
banks operated in ping-pong: stage ``2r`` reads set 0 and writes set 1,
stage ``2r+1`` the reverse (Section IV-A1).  Consecutive coefficients are
striped round-robin across banks (coefficient ``k`` lives in bank
``k mod B`` at address ``k // B``), so a full bank row — ``B``
coefficients — is read or written per cycle.

Per stage, the read sequence alternates *up-and-down* between the low
half and the high half (``[0..B-1], [N/2..N/2+B-1], [B..2B-1], ...``)
while writes are ascending; SWAP units reorder each read pair-row into
the ``n_bfu`` butterfly operand pairs.  The simulation executes the real
arithmetic (it *is* a correct NTT, checked against the gold model), while
recording per-cycle bank access events so the tests can assert:

* at most one read and one write per bank per cycle (1R1W),
* reads and writes never touch the same RAM set in a cycle (ping-pong),
* the routing pattern between banks and BFUs is cycle-invariant
  (*constant geometry* — the paper's argument against HEAX's LUT muxes),
* the steady-state cycle count is ``(N/2 · log2 N) / n_bfu`` — 6144 for
  the production unit, matching Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

import numpy as np

from ..math.cg_ntt import CgSchedule, constant_geometry_schedule
from ..math.modular import modadd_vec, modmul_vec, modsub_vec
from .arch import NttUnitConfig

__all__ = ["BankAccessLog", "NttDatapathSim", "DatapathReport"]


@dataclass
class BankAccessLog:
    """Per-cycle RAM bank events for one transform."""

    #: (cycle, ram_set, bank, address) for every read
    reads: List[Tuple[int, int, int, int]] = field(default_factory=list)
    #: (cycle, ram_set, bank, address) for every write
    writes: List[Tuple[int, int, int, int]] = field(default_factory=list)

    def violations(self) -> List[str]:
        """1R1W and ping-pong violations (empty list = legal schedule)."""
        problems = []
        by_cycle_reads = {}
        by_cycle_writes = {}
        for cyc, ram_set, bank, _addr in self.reads:
            key = (cyc, ram_set, bank)
            by_cycle_reads[key] = by_cycle_reads.get(key, 0) + 1
        for cyc, ram_set, bank, _addr in self.writes:
            key = (cyc, ram_set, bank)
            by_cycle_writes[key] = by_cycle_writes.get(key, 0) + 1
        for key, count in by_cycle_reads.items():
            if count > 1:
                problems.append(f"bank read port conflict at {key}: {count} reads")
        for key, count in by_cycle_writes.items():
            if count > 1:
                problems.append(f"bank write port conflict at {key}: {count} writes")
        # ping-pong: within one cycle the read set and write set must differ
        read_sets = {}
        for cyc, ram_set, _bank, _addr in self.reads:
            read_sets.setdefault(cyc, set()).add(ram_set)
        for cyc, ram_set, _bank, _addr in self.writes:
            if ram_set in read_sets.get(cyc, set()):
                problems.append(f"ping-pong violation at cycle {cyc}")
        return problems


@dataclass
class DatapathReport:
    """Outcome of one simulated transform."""

    cycles: int
    steady_cycles: int
    log: BankAccessLog
    #: distinct (bank -> BFU operand) routing patterns observed; constant
    #: geometry means this stays tiny and stage-independent
    routing_patterns: Set[Tuple[int, ...]] = field(default_factory=set)

    @property
    def is_constant_geometry(self) -> bool:
        return len(self.routing_patterns) <= 2  # up-row and down-row patterns


class NttDatapathSim:
    """Executable model of one CHAM NTT unit.

    Parameters
    ----------
    unit:
        Structural configuration (ring size, BFU count, bank count).
    q:
        The modulus this instance is wired for.
    """

    def __init__(self, unit: NttUnitConfig, q: int) -> None:
        if unit.n % (2 * unit.ram_banks):
            raise ValueError("ring size must be a multiple of 2*banks")
        if unit.ram_banks % (2 * unit.n_bfu) not in (0,) and (
            2 * unit.n_bfu
        ) % unit.ram_banks:
            # one bank row must hold an integer number of operand pairs
            raise ValueError(
                f"bank row of {unit.ram_banks} coefficients incompatible "
                f"with {unit.n_bfu} BFUs"
            )
        self.unit = unit
        self.q = q
        self.schedule: CgSchedule = constant_geometry_schedule(unit.n, q)

    # -- storage helpers ---------------------------------------------------------

    def _bank_of(self, coeff_index: int) -> Tuple[int, int]:
        b = self.unit.ram_banks
        return coeff_index % b, coeff_index // b

    # -- the transform -------------------------------------------------------------

    def forward(self, a: np.ndarray) -> Tuple[np.ndarray, DatapathReport]:
        """Run the forward CG NTT, returning the result and the report.

        The arithmetic follows Algorithm 4 stage by stage; bank events are
        emitted per cycle exactly as the Fig. 3 datapath would issue them.
        """
        unit = self.unit
        n, q = unit.n, self.q
        half = n // 2
        banks = unit.ram_banks

        a = np.asarray(a, dtype=np.uint64)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},)")
        state = a.copy()
        log = BankAccessLog()
        routing: Set[Tuple[int, ...]] = set()
        cycle = 0

        for stage in range(self.schedule.stages):
            src_set = stage % 2
            dst_set = 1 - src_set
            w = self.schedule.twiddles[stage]
            out = np.empty(n, dtype=np.uint64)
            # one group per up-and-down row pair: `banks` butterflies,
            # issued over 2 cycles on `n_bfu` BFUs (banks = 2*n_bfu)
            for g in range(n // (2 * banks)):
                lo = np.arange(g * banks, (g + 1) * banks)
                hi = lo + half
                for k in lo:
                    bank, addr = self._bank_of(int(k))
                    log.reads.append((cycle, src_set, bank, addr))
                for k in hi:
                    bank, addr = self._bank_of(int(k))
                    log.reads.append((cycle + 1, src_set, bank, addr))

                u = state[lo]
                v = modmul_vec(state[hi], w[lo], q)
                out[2 * lo] = modadd_vec(u, v, q)
                out[2 * lo + 1] = modsub_vec(u, v, q)

                # outputs land as two ascending bank rows, one per cycle
                out_base = 2 * g * banks
                for row in range(2):
                    for k in range(out_base + row * banks, out_base + (row + 1) * banks):
                        bank, addr = self._bank_of(k)
                        log.writes.append((cycle + 2 + row, dst_set, bank, addr))

                # routing pattern: source bank of each BFU operand port,
                # identical for every group/stage under constant geometry
                pattern = tuple(int(k % banks) for k in lo) + tuple(
                    int(k % banks) for k in hi
                )
                routing.add(pattern)
                cycle += 2
            # stage drain: the final write pair must retire before the next
            # stage reads the ping-pong partner set
            cycle += 2
            state = out

        steady = (half * self.schedule.stages) // unit.n_bfu
        report = DatapathReport(
            cycles=cycle,
            steady_cycles=steady,
            log=log,
            routing_patterns=routing,
        )
        return state, report

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Functional inverse (mirrored network), without event logging."""
        from ..math.cg_ntt import CgNtt

        return CgNtt(self.unit.n, self.q).inverse(a)

    def inverse_with_report(self, a: np.ndarray) -> Tuple[np.ndarray, DatapathReport]:
        """Run the inverse CG network with full bank-event logging.

        The INTT geometry is the forward network mirrored: each group
        reads two *consecutive* output rows ``[2gB .. 2gB+2B)`` and
        writes one low-half row ``[gB ..]`` and one high-half row
        ``[N/2+gB ..]`` — still one bank row per cycle per port, still a
        single routing pattern (the units share the ping-pong RAMs).
        """
        unit = self.unit
        n, q = unit.n, self.q
        half = n // 2
        banks = unit.ram_banks

        a = np.asarray(a, dtype=np.uint64)
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},)")
        state = a.copy()
        log = BankAccessLog()
        routing: Set[Tuple[int, ...]] = set()
        cycle = 0

        for stage_back, stage in enumerate(range(self.schedule.stages - 1, -1, -1)):
            src_set = stage_back % 2
            dst_set = 1 - src_set
            w_inv = self.schedule.inv_twiddles[stage]
            out = np.empty(n, dtype=np.uint64)
            for g in range(n // (2 * banks)):
                j = np.arange(g * banks, (g + 1) * banks)
                in_base = 2 * g * banks
                for row in range(2):
                    for k in range(in_base + row * banks, in_base + (row + 1) * banks):
                        bank, addr = self._bank_of(k)
                        log.reads.append((cycle + row, src_set, bank, addr))

                even = state[2 * j]
                odd = state[2 * j + 1]
                out[j] = modadd_vec(even, odd, q)
                out[j + half] = modmul_vec(modsub_vec(even, odd, q), w_inv[j], q)

                for k in j:
                    bank, addr = self._bank_of(int(k))
                    log.writes.append((cycle + 2, dst_set, bank, addr))
                for k in j + half:
                    bank, addr = self._bank_of(int(k))
                    log.writes.append((cycle + 3, dst_set, bank, addr))

                pattern = tuple(int((2 * k) % banks) for k in j) + tuple(
                    int((2 * k + 1) % banks) for k in j
                )
                routing.add(pattern)
                cycle += 2
            cycle += 2
            state = out

        state = modmul_vec(state, np.uint64(self.schedule.n_inv), q)
        steady = (half * self.schedule.stages) // unit.n_bfu
        return state, DatapathReport(
            cycles=cycle, steady_cycles=steady, log=log, routing_patterns=routing
        )

    def twiddle_rom_words(self) -> int:
        """Words per BFU twiddle ROM: ``(N/2 * log2 N) / n_bfu`` entries
        shared round-robin — Section IV-A2's 'size equal to a polynomial'
        refers to the N distinct factors, stored once per unit."""
        return (self.unit.n // 2) * self.unit.log2_n // self.unit.n_bfu
