"""RLWE ciphertexts and the basic homomorphic operations.

A ciphertext is the pair ``(b, a) = (c0, c1)`` with decryption invariant

``c0 + c1 * s  =  round(M * m / t) + e   (mod M)``

where ``M`` is the basis product — ``Q = q0*q1`` in the *normal* basis and
``Qp`` in the *augmented* basis.  The message is embedded with the *exact*
scale ``M/t`` (per-coefficient rounding) rather than ``floor(M/t)``; this
is the scale-invariant BFV-RNS encoding and avoids the classical
``m * (M mod t) / M`` invariant-noise term, which for CHAM's production
plaintext modulus (``t ≈ 2**40`` against ``Q ≈ 2**70``) would otherwise
dominate the budget.

The augmented form is the one CHAM's DOTPRODUCT stage consumes (six
polynomials); after the plaintext product, the stage-4 RESCALE divides by
``p``, returning a normal-basis ciphertext (four polynomials) and, in the
same sweep, knocking the multiplication noise down (the paper's
30 bit → 26 bit claim, measured in ``benchmarks/bench_noise.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import obs
from ..math.modular import (
    modadd_vec,
    modmul_vec,
    modneg_vec,
    modsub_vec,
)
from ..math.ntt import freeze_array
from ..math.polynomial import automorph, monomial_multiply
from ..math.rns import RnsBasis
from .context import CheContext
from .encoder import Plaintext
from .keys import PublicKey, SecretKey

__all__ = [
    "NttPlaintext",
    "RlweCiphertext",
    "encrypt",
    "encrypt_pk",
    "decrypt",
    "plaintext_limbs",
    "scaled_plaintext_limbs",
]


def plaintext_limbs(ctx: CheContext, pt: Plaintext, basis: RnsBasis) -> np.ndarray:
    """Reduce the *centered* plaintext coefficients into each limb.

    Centering matters: a coefficient ``t - 1`` means ``-1``, and encoding
    it as the huge positive residue would wreck the noise growth of
    plaintext multiplication.
    """
    return ctx.signed_to_limbs(pt.centered(), basis)


def scaled_plaintext_limbs(
    ctx: CheContext, pt: Plaintext, basis: RnsBasis
) -> np.ndarray:
    """Limbs of ``round(M * m_centered / t)`` — the message embedding.

    Computed exactly over bigints (encryption is not a hot path); the
    rounding error of at most 1/2 per coefficient is the only residue the
    exact scaling leaves behind.
    """
    modulus = basis.product
    t = ctx.t
    centered = pt.centered().astype(object)
    scaled = [(2 * modulus * int(c) + t) // (2 * t) for c in centered]
    return ctx.limbs_for(scaled, basis)


@dataclass
class NttPlaintext:
    """A plaintext held in the NTT domain over an RNS basis.

    This is the matrix-resident representation of the batched engine:
    row encodings are transformed once and reused across every vector,
    skipping the per-call forward NTTs that dominate
    :class:`~repro.core.hmvp.HmvpOpCount`.  ``limbs`` may carry extra
    batch axes — shape ``(L, *batch, n)`` holds a whole row tile — and
    is frozen read-only because instances are shared across threads.
    """

    basis: RnsBasis
    limbs: np.ndarray

    def __post_init__(self) -> None:
        limbs = np.asarray(self.limbs, dtype=np.uint64)
        if (
            limbs.ndim < 2
            or limbs.shape[0] != len(self.basis)
            or limbs.shape[-1] != self.basis.n
        ):
            raise ValueError(
                f"limbs shape {limbs.shape} incompatible with "
                f"({len(self.basis)}, ..., {self.basis.n})"
            )
        if limbs.flags.writeable:
            limbs = limbs.copy()
        self.limbs = freeze_array(limbs)

    @classmethod
    def from_plaintext(
        cls, ctx: CheContext, pt: Plaintext, basis: RnsBasis
    ) -> "NttPlaintext":
        """Center, reduce and forward-transform a coefficient plaintext."""
        limbs = plaintext_limbs(ctx, pt, basis)
        return cls(basis, ctx.ntt_limbs(limbs, basis))


@dataclass
class RlweCiphertext:
    """An RLWE ciphertext ``(c0, c1)`` over an RNS basis.

    Attributes
    ----------
    ctx:
        Owning context.
    basis:
        Either ``ctx.ct_basis`` (normal) or ``ctx.aug_basis`` (augmented).
    c0, c1:
        Limb stacks of shape ``(len(basis), n)``, coefficient domain.
    """

    ctx: CheContext
    basis: RnsBasis
    c0: np.ndarray
    c1: np.ndarray

    def __post_init__(self) -> None:
        expect = (len(self.basis), self.ctx.n)
        for name, comp in (("c0", self.c0), ("c1", self.c1)):
            if comp.shape != expect:
                raise ValueError(f"{name} shape {comp.shape} != {expect}")

    # -- structure ---------------------------------------------------------------

    @property
    def is_augmented(self) -> bool:
        return len(self.basis) == len(self.ctx.aug_basis)

    @property
    def delta(self) -> int:
        """Nominal message scaling factor ``floor(M/t)`` (reporting only;
        the exact embedded scale is the rational ``M/t``)."""
        return self.basis.product // self.ctx.t

    @property
    def poly_count(self) -> int:
        """Number of single-modulus polynomials (the paper's accounting)."""
        return 2 * len(self.basis)

    def copy(self) -> "RlweCiphertext":
        return RlweCiphertext(self.ctx, self.basis, self.c0.copy(), self.c1.copy())

    @classmethod
    def zero(cls, ctx: CheContext, basis: RnsBasis) -> "RlweCiphertext":
        """The transparent encryption of zero (used to pad PACKLWES)."""
        shape = (len(basis), ctx.n)
        return cls(ctx, basis, np.zeros(shape, np.uint64), np.zeros(shape, np.uint64))

    def _check(self, other: "RlweCiphertext") -> None:
        if self.basis.moduli != other.basis.moduli:
            raise ValueError("ciphertext basis mismatch")

    # -- linear homomorphisms -------------------------------------------------------

    def __add__(self, other: "RlweCiphertext") -> "RlweCiphertext":
        self._check(other)
        c0 = np.stack(
            [modadd_vec(self.c0[i], other.c0[i], q) for i, q in enumerate(self.basis)]
        )
        c1 = np.stack(
            [modadd_vec(self.c1[i], other.c1[i], q) for i, q in enumerate(self.basis)]
        )
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    def __sub__(self, other: "RlweCiphertext") -> "RlweCiphertext":
        self._check(other)
        c0 = np.stack(
            [modsub_vec(self.c0[i], other.c0[i], q) for i, q in enumerate(self.basis)]
        )
        c1 = np.stack(
            [modsub_vec(self.c1[i], other.c1[i], q) for i, q in enumerate(self.basis)]
        )
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    def __neg__(self) -> "RlweCiphertext":
        c0 = np.stack([modneg_vec(self.c0[i], q) for i, q in enumerate(self.basis)])
        c1 = np.stack([modneg_vec(self.c1[i], q) for i, q in enumerate(self.basis)])
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    def add_plain(self, pt: Plaintext) -> "RlweCiphertext":
        """Add ``pt`` to the message (embedded at the exact ``M/t`` scale)."""
        limbs = scaled_plaintext_limbs(self.ctx, pt, self.basis)
        c0 = np.stack(
            [
                modadd_vec(self.c0[i], limbs[i], q)
                for i, q in enumerate(self.basis)
            ]
        )
        return RlweCiphertext(self.ctx, self.basis, c0, self.c1.copy())

    def multiply_plain(self, pt: Plaintext) -> "RlweCiphertext":
        """Plaintext-ciphertext product (CHAM pipeline stages 1-3).

        Both components go through NTT, a coefficient-wise product with
        the NTT of the plaintext, and INTT — exactly the DOTPRODUCT module
        when ``pt`` is a row encoding (Eq. 2).
        """
        obs.inc("he.rlwe.multiply_plain")
        limbs = plaintext_limbs(self.ctx, pt, self.basis)
        with obs.span("NTT", limbs=len(self.basis), polys=3):
            pt_ntt = self.ctx.ntt_limbs(limbs, self.basis)
            comp_ntts = [
                self.ctx.ntt_limbs(comp, self.basis) for comp in (self.c0, self.c1)
            ]
        with obs.span("MULTPOLY", limbs=len(self.basis)):
            prods = [
                np.stack(
                    [
                        modmul_vec(comp_ntt[i], pt_ntt[i], q)
                        for i, q in enumerate(self.basis)
                    ]
                )
                for comp_ntt in comp_ntts
            ]
        with obs.span("INTT", limbs=len(self.basis), polys=2):
            out = [self.ctx.intt_limbs(prod, self.basis) for prod in prods]
        return RlweCiphertext(self.ctx, self.basis, out[0], out[1])

    def ntt_components(self) -> "tuple[np.ndarray, np.ndarray]":
        """Forward NTT of both components (the hoisted transform).

        The batched engine computes this once per vector ciphertext and
        reuses it for every matrix row, so a request pays ``2*(L)``
        transforms total instead of ``2*(L)`` per row.
        """
        return (
            self.ctx.ntt_limbs(self.c0, self.basis),
            self.ctx.ntt_limbs(self.c1, self.basis),
        )

    def multiply_plain_ntt(
        self,
        pt_ntt: NttPlaintext,
        comp_ntts: "Optional[tuple[np.ndarray, np.ndarray]]" = None,
    ) -> "RlweCiphertext":
        """Plaintext product with the plaintext transform already resident.

        ``comp_ntts`` optionally supplies the hoisted NTT of this
        ciphertext (from :meth:`ntt_components`) so repeated products
        against different plaintexts skip the forward transform too.
        Numerically identical to :meth:`multiply_plain`.
        """
        if pt_ntt.basis.moduli != self.basis.moduli:
            raise ValueError("plaintext basis mismatch")
        obs.inc("he.rlwe.multiply_plain")
        if comp_ntts is None:
            with obs.span("NTT", limbs=len(self.basis), polys=2):
                comp_ntts = self.ntt_components()
        with obs.span("MULTPOLY", limbs=len(self.basis)):
            prods = [
                np.stack(
                    [
                        modmul_vec(comp_ntt[i], pt_ntt.limbs[i], q)
                        for i, q in enumerate(self.basis)
                    ]
                )
                for comp_ntt in comp_ntts
            ]
        with obs.span("INTT", limbs=len(self.basis), polys=2):
            out = [self.ctx.intt_limbs(prod, self.basis) for prod in prods]
        return RlweCiphertext(self.ctx, self.basis, out[0], out[1])

    def multiply_scalar(self, value: int) -> "RlweCiphertext":
        """Multiply message (and noise) by a small integer scalar."""
        c0 = np.stack(
            [modmul_vec(self.c0[i], np.uint64(value % q), q) for i, q in enumerate(self.basis)]
        )
        c1 = np.stack(
            [modmul_vec(self.c1[i], np.uint64(value % q), q) for i, q in enumerate(self.basis)]
        )
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    # -- PPU operations on ciphertexts (Table I, lifted per-component) ---------------

    def multiply_monomial(self, exponent: int) -> "RlweCiphertext":
        """MULTMONO: multiply by ``X^exponent`` (noise-free)."""
        c0 = np.stack(
            [monomial_multiply(self.c0[i], exponent, q) for i, q in enumerate(self.basis)]
        )
        c1 = np.stack(
            [monomial_multiply(self.c1[i], exponent, q) for i, q in enumerate(self.basis)]
        )
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    def automorph_raw(self, g: int) -> "RlweCiphertext":
        """AUTOMORPH both components; the result decrypts under ``s(X^g)``.

        Callers must key-switch back to ``s`` (see
        :func:`repro.he.automorphism.apply_automorphism`).
        """
        c0 = np.stack([automorph(self.c0[i], g, q) for i, q in enumerate(self.basis)])
        c1 = np.stack([automorph(self.c1[i], g, q) for i, q in enumerate(self.basis)])
        return RlweCiphertext(self.ctx, self.basis, c0, c1)

    # -- rescale (pipeline stage 4) ----------------------------------------------------

    def rescale(self) -> "RlweCiphertext":
        """Divide-and-round by the special modulus: augmented -> normal.

        ``(c0, c1) mod Qp  ->  (round(c0/p), round(c1/p)) mod Q``; the
        message scale drops from ``Δ_aug ≈ Δ * p`` to ``Δ`` and the
        accumulated multiplication noise is divided by ``p``.
        """
        if not self.is_augmented:
            raise ValueError("rescale applies to augmented ciphertexts only")
        obs.inc("he.rlwe.rescale")
        c0 = self.basis.rescale_last(self.c0)
        c1 = self.basis.rescale_last(self.c1)
        return RlweCiphertext(self.ctx, self.ctx.ct_basis, c0, c1)

    # -- circuit privacy ----------------------------------------------------------------

    def flood_noise(self, bits: int) -> "RlweCiphertext":
        """Add uniform noise of ``bits`` bits (noise flooding).

        In the two-party protocol of Section II-F, party B returns a
        ciphertext whose noise is a deterministic function of B's secret
        matrix; flooding with noise exponentially larger than the
        computation noise statistically hides it from party A (the
        standard circuit-privacy countermeasure for Cheetah-style
        protocols).  Costs ``bits`` of budget; the caller must keep
        ``bits`` below the remaining margin.
        """
        ctx = self.ctx
        flood = ctx.rng.integers(
            -(1 << bits), (1 << bits) + 1, ctx.n, dtype=np.int64
        )
        limbs = ctx.signed_to_limbs(flood, self.basis)
        c0 = np.stack(
            [modadd_vec(self.c0[i], limbs[i], q) for i, q in enumerate(self.basis)]
        )
        return RlweCiphertext(ctx, self.basis, c0, self.c1.copy())

    # -- decryption helpers --------------------------------------------------------------

    def phase(self, sk: SecretKey) -> np.ndarray:
        """``c0 + c1 * s`` as exact centered bigints (noise analysis)."""
        s = sk.limbs(self.ctx, self.basis)
        c1s = self.ctx.negacyclic_multiply(self.c1, s, self.basis)
        total = np.stack(
            [modadd_vec(self.c0[i], c1s[i], q) for i, q in enumerate(self.basis)]
        )
        return self.basis.compose_centered(total)


def encrypt(
    ctx: CheContext,
    sk: SecretKey,
    pt: Plaintext,
    augmented: bool = True,
    error_std: Optional[float] = None,
) -> RlweCiphertext:
    """Symmetric encryption: ``( -(a s) + Δ m + e , a )``.

    ``augmented=True`` (the default) produces the six-polynomial form the
    CHAM dot-product pipeline ingests; ``augmented=False`` the four-
    polynomial wire format.
    """
    basis = ctx.aug_basis if augmented else ctx.ct_basis
    a = ctx.sample_uniform(basis)
    e = ctx.signed_to_limbs(ctx.sample_error_signed(error_std), basis)
    s = sk.limbs(ctx, basis)
    a_s = ctx.negacyclic_multiply(a, s, basis)
    m_limbs = scaled_plaintext_limbs(ctx, pt, basis)
    c0 = np.stack(
        [
            modadd_vec(
                modadd_vec(modneg_vec(a_s[i], q), e[i], q), m_limbs[i], q
            )
            for i, q in enumerate(basis)
        ]
    )
    return RlweCiphertext(ctx, basis, c0, a)


def encrypt_pk(
    ctx: CheContext, pk: PublicKey, pt: Plaintext, augmented: bool = True
) -> RlweCiphertext:
    """Public-key encryption: ``(pk0 u + e1 + Δ m, pk1 u + e2)``."""
    basis = ctx.aug_basis if augmented else ctx.ct_basis
    limbs = len(basis)
    u = ctx.signed_to_limbs(ctx.sample_ternary_signed(), basis)
    e1 = ctx.signed_to_limbs(ctx.sample_error_signed(), basis)
    e2 = ctx.signed_to_limbs(ctx.sample_error_signed(), basis)
    m_limbs = scaled_plaintext_limbs(ctx, pt, basis)
    pk0 = pk.b[:limbs]
    pk1 = pk.a[:limbs]
    pk0_u = ctx.negacyclic_multiply(pk0, u, basis)
    pk1_u = ctx.negacyclic_multiply(pk1, u, basis)
    c0 = np.stack(
        [
            modadd_vec(
                modadd_vec(pk0_u[i], e1[i], q), m_limbs[i], q
            )
            for i, q in enumerate(basis)
        ]
    )
    c1 = np.stack([modadd_vec(pk1_u[i], e2[i], q) for i, q in enumerate(basis)])
    return RlweCiphertext(ctx, basis, c0, c1)


def decrypt(ctx: CheContext, sk: SecretKey, ct: RlweCiphertext) -> Plaintext:
    """BFV decryption: ``round(t * phase / (basis product)) mod t``."""
    phase = ct.phase(sk)
    modulus = ct.basis.product
    t = ctx.t
    coeffs = np.empty(ctx.n, dtype=np.uint64)
    for i, v in enumerate(phase):
        num = int(v) * t
        # round-to-nearest division, correct for negative numerators
        m = (2 * num + modulus) // (2 * modulus)
        coeffs[i] = m % t
    return Plaintext(coeffs, t)
