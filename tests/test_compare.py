"""Tests for the published-accelerator comparison data."""

import pytest

from repro.hw.compare import KNOWN_ACCELERATORS, cham_entry, comparison_rows


def test_cham_matches_our_simulator():
    from repro.hw.arch import NttUnitConfig, cham_default_config

    cham = cham_entry()
    assert cham.ntt_cycles == NttUnitConfig().cycles
    assert cham.clock_mhz * 1e6 == cham_default_config().clock_hz


def test_f1_atp_ratio_matches_table3():
    f1 = KNOWN_ACCELERATORS["F1"]
    cham = cham_entry()
    assert f1.atp / cham.atp == pytest.approx(7.36, abs=0.05)


def test_asic_areas_in_paper_band():
    """§I: ASIC areas are 'extremely large (100 mm^2 ~ 400 mm^2)'."""
    asics = [a for a in KNOWN_ACCELERATORS.values() if a.technology == "ASIC"]
    assert asics
    for acc in asics:
        assert 100 <= acc.area_mm2 <= 500


def test_cham_is_the_only_multischeme_kernel_accelerator():
    cham = cham_entry()
    assert cham.scope == "kernel" and cham.multi_scheme
    others = [
        a
        for name, a in KNOWN_ACCELERATORS.items()
        if name != "CHAM" and a.multi_scheme
    ]
    assert not others


def test_comparison_rows_shape():
    rows = comparison_rows()
    assert rows[0][0] == "CHAM"
    assert len(rows) == len(KNOWN_ACCELERATORS)
    assert all(len(r) == 8 for r in rows)


def test_ntt_rate_heax_vs_cham():
    cham = cham_entry()
    heax = KNOWN_ACCELERATORS["HEAX"]
    # same per-unit rate at the same clock; CHAM wins on unit count/compactness
    assert cham.ntt_rate_per_unit == heax.ntt_rate_per_unit
