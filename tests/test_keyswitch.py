"""Tests for RNS-hybrid key-switching."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.keys import generate_keyswitch_key, generate_secret_key
from repro.he.keyswitch import apply_keyswitch, key_switch_raw
from repro.he.noise import NoiseModel, absolute_noise_bits
from repro.he.rlwe import decrypt, encrypt


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


@pytest.fixture(scope="module")
def other_key(ctx128):
    return generate_secret_key(ctx128)


@pytest.fixture(scope="module")
def ksk(ctx128, sk128, other_key):
    return generate_keyswitch_key(ctx128, other_key, sk128)


def test_keyswitch_preserves_message(ctx128, sk128, other_key, ksk, enc, rng):
    vals = rng.integers(-(1 << 30), 1 << 30, 128)
    pt = enc.encode_coeffs(vals)
    ct = encrypt(ctx128, other_key, pt, augmented=False)
    switched = apply_keyswitch(ct, ksk)
    assert decrypt(ctx128, sk128, switched) == pt


def test_keyswitch_noise_is_word_sized(ctx128, sk128, other_key, ksk, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx128, other_key, pt, augmented=False)
    switched = apply_keyswitch(ct, ksk)
    measured = absolute_noise_bits(ctx128, sk128, switched)
    model = NoiseModel.for_context(ctx128)
    predicted = model.keyswitch(dnum=2, q_max=max(ctx128.params.ct_moduli))
    import math

    assert measured < math.log2(predicted) + 6  # generous envelope
    assert measured < 20  # far from the ~29-bit budget edge


def test_keyswitch_rejects_augmented(ctx128, sk128, other_key, ksk, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx128, other_key, pt, augmented=True)
    with pytest.raises(ValueError, match="normal-basis"):
        apply_keyswitch(ct, ksk)


def test_key_switch_raw_rewrites_secret_term(ctx128, sk128, other_key, ksk, rng):
    """d0 + d1*s ≈ c*s_src for a random polynomial c."""
    basis = ctx128.ct_basis
    c = np.stack(
        [rng.integers(0, q, 128, dtype=np.uint64) for q in basis]
    )
    d0, d1 = key_switch_raw(ctx128, c, ksk)
    s = sk128.limbs(ctx128, basis)
    src = other_key.limbs(ctx128, basis)
    from repro.math.modular import modadd_vec, modsub_vec

    d1_s = ctx128.negacyclic_multiply(d1, s, basis)
    lhs = np.stack([modadd_vec(d0[i], d1_s[i], q) for i, q in enumerate(basis)])
    rhs = ctx128.negacyclic_multiply(c, src, basis)
    diff = np.stack([modsub_vec(lhs[i], rhs[i], q) for i, q in enumerate(basis)])
    err = basis.compose_centered(diff)
    worst = max(abs(int(v)) for v in err)
    assert 0 < worst < 1 << 20  # small additive noise, never exact


def test_key_switch_raw_shape_check(ctx128, ksk):
    with pytest.raises(ValueError):
        key_switch_raw(ctx128, np.zeros((3, 128), np.uint64), ksk)


def test_switch_to_same_key_is_identityish(ctx128, sk128, enc, rng):
    """A ksk from s to s acts as a (noisy) refresh."""
    ksk_self = generate_keyswitch_key(ctx128, sk128, sk128)
    pt = enc.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    out = apply_keyswitch(ct, ksk_self)
    assert decrypt(ctx128, sk128, out) == pt
    # the mask must actually change (it is rebuilt from the key)
    assert not np.array_equal(out.c1, ct.c1)
