"""Opt-in numba JIT kernels behind the ``REPRO_JIT=1`` feature flag.

The container image does not ship numba, and the pure-NumPy kernels are
the correctness oracle, so JIT compilation is strictly opt-in:

* the flag is read from the environment once at import
  (``REPRO_JIT=1``) and can be flipped programmatically with
  :func:`configure` (tests use this);
* when the flag is on but numba is missing, the flag is a no-op —
  :func:`enabled` stays ``False`` and every caller falls back to the
  NumPy paths (nothing is ever ``pip install``-ed implicitly);
* the kernels implement the exact split-operand formula of
  ``modular.modmul_vec_split`` per element, so JIT output is
  bit-identical to the oracle by construction (and by the
  ``REPRO_JIT=1`` differential suite in
  ``tests/test_fastpath_properties.py``).

This module deliberately imports nothing from the rest of the package
(``modular`` imports it), so the split constants are mirrored here; the
property tests pin them equal.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

__all__ = ["available", "enabled", "configure", "modmul", "modadd", "modsub"]

#: mirror of ``modular.SPLIT_BITS`` (no import: modular imports us)
_SPLIT_BITS = 20
_LOW_MASK = (1 << _SPLIT_BITS) - 1

try:  # pragma: no cover - exercised only on the numba CI leg
    import numba as _numba
except ImportError:  # pragma: no cover
    _numba = None

_ENABLED = os.environ.get("REPRO_JIT", "0") == "1" and _numba is not None


def available() -> bool:
    """True when numba is importable in this environment."""
    return _numba is not None


def enabled() -> bool:
    """True when the JIT dispatch is active (flag set *and* numba present)."""
    return _ENABLED


def configure(enabled: Optional[bool] = None) -> bool:
    """Flip the JIT dispatch at runtime; returns the effective state.

    Enabling without numba installed is a no-op (the NumPy paths keep
    serving); tests use this to exercise both dispatch branches without
    re-importing the package.
    """
    global _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled) and _numba is not None
    return _ENABLED


if _numba is not None:  # pragma: no cover - compiled only on the numba leg

    @_numba.njit(cache=True, nogil=True)
    def _modmul_kernel(a, b, q, out):  # type: ignore[no-untyped-def]
        for i in range(a.size):
            ai = a[i]
            bi = b[i]
            hi = ((ai >> _SPLIT_BITS) * bi) % q  # repro: noqa REPRO101 -- split keeps intermediates < 2**62
            lo = ((ai & _LOW_MASK) * bi) % q  # repro: noqa REPRO101 -- split keeps intermediates < 2**62
            out[i] = ((hi << _SPLIT_BITS) + lo) % q

    @_numba.njit(cache=True, nogil=True)
    def _modadd_kernel(a, b, q, out):  # type: ignore[no-untyped-def]
        for i in range(a.size):
            s = a[i] + b[i]
            out[i] = s - q if s >= q else s

    @_numba.njit(cache=True, nogil=True)
    def _modsub_kernel(a, b, q, out):  # type: ignore[no-untyped-def]
        for i in range(a.size):
            ai = a[i]
            bi = b[i]
            out[i] = ai - bi if ai >= bi else ai + q - bi


def _run_kernel(kernel, a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    a_b, b_b = np.broadcast_arrays(a, b)
    shape = a_b.shape
    a_flat = np.ascontiguousarray(a_b, dtype=np.uint64).reshape(-1)
    b_flat = np.ascontiguousarray(b_b, dtype=np.uint64).reshape(-1)
    out = np.empty_like(a_flat)
    kernel(a_flat, b_flat, np.uint64(q), out)
    return out.reshape(shape)


def modmul(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """JIT ``(a * b) mod q``; bit-identical to ``modmul_vec_split``."""
    return _run_kernel(_modmul_kernel, a, b, q)


def modadd(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """JIT ``(a + b) mod q``."""
    return _run_kernel(_modadd_kernel, a, b, q)


def modsub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """JIT ``(a - b) mod q``."""
    return _run_kernel(_modsub_kernel, a, b, q)
