"""User-facing scheme facade.

:class:`BfvScheme` bundles the parameter set, context, key material and
encoder behind the handful of calls applications actually make
(*keygen → encrypt → evaluate → decrypt*).  The lower-level modules stay
importable for anything the facade does not cover.

This is the object the application layer (:mod:`repro.apps`) and the
examples build on; the paper's Section V-B3 workload ("we replaced
Paillier with B/FV") maps to swapping :class:`repro.he.paillier.Paillier`
for this class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .context import CheContext
from .encoder import CoefficientEncoder, FixedPointCodec, Plaintext
from .keys import (
    GaloisKeyset,
    PublicKey,
    SecretKey,
    generate_galois_keyset,
    generate_public_key,
    generate_secret_key,
    pack_galois_elements,
)
from .lwe import LweCiphertext, decrypt_lwe, extract_lwe
from .noise import absolute_noise_bits, invariant_noise_budget
from .packing import PackedResult, pack_lwes
from .params import CheParams, cham_params
from .rlwe import RlweCiphertext, decrypt, encrypt, encrypt_pk

__all__ = ["BfvScheme"]


class BfvScheme:
    """The CHAM HE scheme, keys included.

    Parameters
    ----------
    params:
        Parameter set; defaults to the paper's production set.
    seed:
        Seed for reproducible key generation and encryption randomness.
    max_pack:
        Largest number of LWE ciphertexts the instance will pack; Galois
        keys are generated for exactly the required merge levels.
    """

    def __init__(
        self,
        params: Optional[CheParams] = None,
        seed: Optional[int] = None,
        max_pack: Optional[int] = None,
    ) -> None:
        self.params = params if params is not None else cham_params()
        self.ctx = CheContext(self.params, seed)
        self.encoder = CoefficientEncoder(self.params)
        self.secret_key: SecretKey = generate_secret_key(self.ctx)
        self.public_key: PublicKey = generate_public_key(self.ctx, self.secret_key)
        elements = pack_galois_elements(
            self.params.n, max_count=max_pack if max_pack else None
        )
        self.galois_keys: GaloisKeyset = generate_galois_keyset(
            self.ctx, self.secret_key, elements
        )

    # -- encryption ----------------------------------------------------------------

    def encrypt_vector(
        self, v: Sequence[int], augmented: bool = True, public: bool = False
    ) -> RlweCiphertext:
        """Encrypt an integer vector with Eq. 1's ``pt^(v)`` encoding."""
        pt = self.encoder.encode_vector(np.asarray(v))
        if public:
            return encrypt_pk(self.ctx, self.public_key, pt, augmented=augmented)
        return encrypt(self.ctx, self.secret_key, pt, augmented=augmented)

    def encrypt_plaintext(
        self, pt: Plaintext, augmented: bool = True
    ) -> RlweCiphertext:
        return encrypt(self.ctx, self.secret_key, pt, augmented=augmented)

    # -- decryption ----------------------------------------------------------------

    def decrypt_plaintext(self, ct: RlweCiphertext) -> Plaintext:
        return decrypt(self.ctx, self.secret_key, ct)

    def decrypt_coeffs(self, ct: RlweCiphertext, count: int) -> np.ndarray:
        """Decrypt and return the first ``count`` centered coefficients."""
        return self.decrypt_plaintext(ct).centered()[:count]

    def decrypt_packed(self, packed: PackedResult) -> np.ndarray:
        """Decrypt a PACKLWES result into centered slot values."""
        pt = self.decrypt_plaintext(packed.ct)
        return self.encoder.decode_packed(pt, packed.count, packed.scale_pow2)

    def decrypt_lwe(self, lwe: LweCiphertext) -> int:
        return decrypt_lwe(self.ctx, self.secret_key, lwe)

    # -- evaluation ----------------------------------------------------------------

    def dot_product(self, ct_v: RlweCiphertext, row: Sequence[int]) -> RlweCiphertext:
        """One DOTPRODUCT pipeline pass: multiply by ``pt^(row)``, rescale."""
        pt_row = self.encoder.encode_row(np.asarray(row))
        prod = ct_v.multiply_plain(pt_row)
        return prod.rescale() if prod.is_augmented else prod

    def extract(self, ct: RlweCiphertext, idx: int = 0) -> LweCiphertext:
        return extract_lwe(ct, idx)

    def pack(self, lwes: List[LweCiphertext]) -> PackedResult:
        return pack_lwes(lwes, self.galois_keys)

    # -- fixed point -----------------------------------------------------------------

    def fixed_point(self, frac_bits: int = 13) -> FixedPointCodec:
        return FixedPointCodec(self.params.plain_modulus, frac_bits)

    # -- diagnostics -----------------------------------------------------------------

    def noise_bits(
        self, ct: RlweCiphertext, positions: Optional[Sequence[int]] = None
    ) -> float:
        return absolute_noise_bits(self.ctx, self.secret_key, ct, positions)

    def noise_budget(
        self, ct: RlweCiphertext, positions: Optional[Sequence[int]] = None
    ) -> float:
        return invariant_noise_budget(self.ctx, self.secret_key, ct, positions)
