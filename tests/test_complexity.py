"""Tests for the §II-E complexity models."""

import pytest

from repro.core.complexity import batch_cost, coefficient_cost, diagonal_cost


def test_coefficient_is_o_of_m():
    """Doubling m doubles coefficient-encoding HE ops (no log factor)."""
    a = coefficient_cost(1024, 1024, 4096)
    b = coefficient_cost(2048, 1024, 4096)
    assert b.he_ops == 2 * a.he_ops


def test_batch_is_o_of_m_log_n():
    a = batch_cost(1024, 4096, 4096)
    b = batch_cost(2048, 4096, 4096)
    assert b.he_ops == 2 * a.he_ops
    # per-row factor is log2-sized
    per_row = a.he_ops / 1024
    assert 10 <= per_row <= 14  # log2(4096/2) + the multiply


def test_ordering_matches_paper():
    """batch > diagonal > coefficient at every evaluated shape."""
    for m, n in [(512, 512), (4096, 4096), (8192, 4096), (1024, 8192)]:
        c = coefficient_cost(m, n, 4096)
        d = diagonal_cost(m, n, 4096)
        b = batch_cost(m, n, 4096)
        assert b.he_ops > d.he_ops >= c.he_ops, (m, n)


def test_coefficient_has_no_rotations():
    c = coefficient_cost(4096, 4096, 4096)
    assert c.rotations == 0
    assert c.keyswitches == 4095  # one per pack reduction


def test_diagonal_rotations_scale_with_m():
    d1 = diagonal_cost(512, 4096, 4096)
    d2 = diagonal_cost(1024, 4096, 4096)
    assert d2.rotations > 1.9 * d1.rotations


def test_column_tiling_multiplies_cost():
    one = coefficient_cost(1024, 4096, 4096)
    two = coefficient_cost(1024, 8192, 4096)
    assert two.he_ops == 2 * one.he_ops


def test_row_tiling_coefficient():
    one = coefficient_cost(4096, 256, 4096)
    two = coefficient_cost(8192, 256, 4096)
    assert two.ops.pack_reductions == 2 * one.ops.pack_reductions


def test_cost_names():
    assert coefficient_cost(8, 8, 4096).name == "coefficient"
    assert batch_cost(8, 8, 4096).name == "batch"
    assert diagonal_cost(8, 8, 4096).name == "diagonal"


def test_he_ops_is_mults_plus_rotations():
    d = diagonal_cost(64, 512, 4096)
    assert d.he_ops == d.he_multiplies + d.rotations
