"""Tests for Beaver triple generation (Fig. 7c workload)."""

import numpy as np
import pytest

from repro.apps.beaver import BeaverGenerator, verify_triple


@pytest.fixture(scope="module")
def generator(scheme128):
    return BeaverGenerator(scheme128, seed=99)


def test_triple_is_valid(generator, rng):
    w = rng.integers(-30, 30, (8, 128))
    triple = generator.generate(w)
    assert verify_triple(triple)
    assert triple.shape == (8, 128)


def test_triple_valid_for_narrow_matrix(generator, rng):
    w = rng.integers(-30, 30, (5, 40))
    assert verify_triple(generator.generate(w))


def test_shares_hide_the_inputs(generator, rng):
    """c1 alone must look unrelated to W*a1 (the mask blinds it)."""
    w = rng.integers(-10, 10, (4, 128))
    triple = generator.generate(w)
    t = triple.t
    raw = (triple.matrix.astype(object) @ triple.a1.astype(object)) % t
    assert not np.array_equal(triple.c1, raw)


def test_masks_differ_between_triples(generator, rng):
    w = rng.integers(-10, 10, (4, 128))
    t1 = generator.generate(w)
    t2 = generator.generate(w)
    assert not np.array_equal(t1.c1, t2.c1)
    assert verify_triple(t1) and verify_triple(t2)


def test_batch_generation(generator, rng):
    w = rng.integers(-10, 10, (3, 64))
    triples = generator.generate_batch(w, 3)
    assert len(triples) == 3
    assert all(verify_triple(t) for t in triples)


def test_stats_accumulate(scheme128, rng):
    gen = BeaverGenerator(scheme128, seed=5)
    w = rng.integers(-10, 10, (4, 128))
    gen.generate(w)
    gen.generate(w)
    assert gen.stats.triples == 2
    assert gen.stats.encryptions == 2
    assert gen.stats.ops.dot_products == 8  # 4 rows x 2 triples


def test_triple_usage_in_secure_multiply(generator, rng):
    """Use a triple the Beaver way to multiply W by a secret vector x."""
    t = generator.scheme.params.plain_modulus
    w = rng.integers(-10, 10, (6, 128))
    triple = generator.generate(w)
    # parties hold shares x1, x2 of x; they open epsilon = x - a
    x = rng.integers(-100, 100, 128).astype(object)
    a = (triple.a1.astype(object) + triple.a2.astype(object)) % t
    epsilon = (x - a) % t
    # W*x = W*epsilon + (c1 + c2)
    wx_shares = (
        triple.matrix.astype(object) @ epsilon
        + triple.c1.astype(object)
        + triple.c2.astype(object)
    ) % t
    want = (triple.matrix.astype(object) @ x) % t
    assert np.array_equal(wx_shares, want)


def test_matrix_triples(scheme128, rng):
    from repro.apps.beaver import MatrixBeaverGenerator

    gen = MatrixBeaverGenerator(scheme128, seed=7)
    w = rng.integers(-20, 20, (6, 128))
    triples = gen.generate_matrix(w, cols=3)
    assert len(triples) == 3
    assert all(verify_triple(t) for t in triples)
    assert gen.stats.triples == 3
    # the hoisted path skips the per-column row transforms
    assert gen.stats.ops.dot_products == 18


def test_matrix_triples_are_independent(scheme128, rng):
    from repro.apps.beaver import MatrixBeaverGenerator

    gen = MatrixBeaverGenerator(scheme128, seed=8)
    w = rng.integers(-10, 10, (4, 64))
    t1, t2 = gen.generate_matrix(w, cols=2)
    assert not np.array_equal(t1.a1, t2.a1)
    assert not np.array_equal(t1.c1, t2.c1)
