"""Wire formats and communication-cost accounting.

HE's bandwidth blow-up (×10² to ×10⁵, per the paper's introduction) is
what the two-party protocols pay on the network, so the library ships a
compact binary wire format for every exchanged object:

* little-endian framed records with a 4-byte magic and type tag;
* polynomial limbs packed at their *modulus width* (ceil(log2 q) bits
  per coefficient, bit-packed) — a normal-basis N=4096 ciphertext is
  ~71.7 KiB on the wire instead of the 128 KiB naive uint64 dump;
* versioned headers so persisted keys survive library upgrades.

:class:`CommunicationLedger` tallies protocol traffic so the application
benches can report bytes-exchanged alongside time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..math.rns import RnsBasis
from .context import CheContext
from .encoder import Plaintext
from .lwe import LweCiphertext
from .rlwe import RlweCiphertext

if TYPE_CHECKING:  # typing-only: key deserializers import lazily below
    from .keys import GaloisKeyset, KeySwitchKey, SecretKey

__all__ = [
    "MAGIC",
    "pack_limbs",
    "unpack_limbs",
    "serialize_plaintext",
    "deserialize_plaintext",
    "serialize_rlwe",
    "deserialize_rlwe",
    "serialize_lwe",
    "deserialize_lwe",
    "rlwe_wire_bytes",
    "serialize_secret_key",
    "deserialize_secret_key",
    "serialize_keyswitch_key",
    "deserialize_keyswitch_key",
    "serialize_galois_keyset",
    "deserialize_galois_keyset",
    "CommunicationLedger",
]

MAGIC = b"CHAM"
_VERSION = 1
_TYPE_PLAINTEXT = 1
_TYPE_RLWE = 2
_TYPE_LWE = 3


def _bits_for(q: int) -> int:
    return (q - 1).bit_length()


def pack_limbs(limbs: np.ndarray, moduli: Tuple[int, ...]) -> bytes:
    """Bit-pack each limb at its modulus width.

    Wire layout per limb: a little-endian bitstream where coefficient
    ``j`` occupies bits ``[j*bits, (j+1)*bits)``, zero-padded up to a
    byte boundary.  Vectorized with :func:`numpy.packbits` — the previous
    per-coefficient Python big-int loop was O(n²) bit work on the path
    every serialized ciphertext takes.
    """
    limbs = np.asarray(limbs, dtype=np.uint64)
    out = []
    for i, q in enumerate(moduli):
        bits = _bits_for(q)
        vals = np.ascontiguousarray(limbs[i])
        # (n, bits) matrix of LSB-first bits, then one little-endian packbits
        shifts = np.arange(bits, dtype=np.uint64)
        bitmat = ((vals[:, None] >> shifts) & np.uint64(1)).astype(np.uint8)
        out.append(np.packbits(bitmat.reshape(-1), bitorder="little").tobytes())
    return b"".join(out)


def unpack_limbs(
    data: bytes, moduli: Tuple[int, ...], n: int
) -> "tuple[np.ndarray, int]":
    """Inverse of :func:`pack_limbs`; returns ``(limbs, bytes_consumed)``."""
    limbs = np.empty((len(moduli), n), dtype=np.uint64)
    offset = 0
    for i, q in enumerate(moduli):
        bits = _bits_for(q)
        total_bytes = (bits * n + 7) // 8
        chunk = data[offset : offset + total_bytes]
        if len(chunk) != total_bytes:
            raise ValueError("truncated limb data")
        raw = np.frombuffer(chunk, dtype=np.uint8)
        bitmat = np.unpackbits(raw, bitorder="little")[: bits * n]
        weights = np.uint64(1) << np.arange(bits, dtype=np.uint64)
        # each row sums to the original value exactly (bits <= 63)
        limbs[i] = (bitmat.reshape(n, bits).astype(np.uint64) * weights).sum(
            axis=1
        )
        offset += total_bytes
    return limbs, offset


def _header(type_tag: int, n: int, limb_count: int) -> bytes:
    return MAGIC + struct.pack("<BBHI", _VERSION, type_tag, limb_count, n)


def _parse_header(data: bytes, expect_tag: int) -> "tuple[int, int, int]":
    if data[:4] != MAGIC:
        raise ValueError("bad magic; not a CHAM wire object")
    version, tag, limb_count, n = struct.unpack("<BBHI", data[4:12])
    if version != _VERSION:
        raise ValueError(f"unsupported wire version {version}")
    if tag != expect_tag:
        raise ValueError(f"wire type {tag}, expected {expect_tag}")
    return n, limb_count, 12


def serialize_plaintext(pt: Plaintext) -> bytes:
    body = pack_limbs(pt.coeffs[None, :], (pt.t,))
    return _header(_TYPE_PLAINTEXT, pt.n, 1) + struct.pack("<Q", pt.t & ((1 << 64) - 1)) + body


def deserialize_plaintext(data: bytes, t: int) -> Plaintext:
    n, _limbs, off = _parse_header(data, _TYPE_PLAINTEXT)
    (stored_t,) = struct.unpack("<Q", data[off : off + 8])
    if stored_t != t & ((1 << 64) - 1):
        raise ValueError("plaintext modulus mismatch")
    limbs, _ = unpack_limbs(data[off + 8 :], (t,), n)
    return Plaintext(limbs[0], t)


def serialize_rlwe(ct: RlweCiphertext) -> bytes:
    moduli = ct.basis.moduli
    body = pack_limbs(ct.c0, moduli) + pack_limbs(ct.c1, moduli)
    return _header(_TYPE_RLWE, ct.ctx.n, len(moduli)) + body


def deserialize_rlwe(data: bytes, ctx: CheContext) -> RlweCiphertext:
    n, limb_count, off = _parse_header(data, _TYPE_RLWE)
    if n != ctx.n:
        raise ValueError(f"ring degree {n} != context degree {ctx.n}")
    basis: RnsBasis
    if limb_count == len(ctx.ct_basis):
        basis = ctx.ct_basis
    elif limb_count == len(ctx.aug_basis):
        basis = ctx.aug_basis
    else:
        raise ValueError(f"unexpected limb count {limb_count}")
    c0, used = unpack_limbs(data[off:], basis.moduli, n)
    c1, _ = unpack_limbs(data[off + used :], basis.moduli, n)
    return RlweCiphertext(ctx, basis, c0, c1)


def serialize_lwe(lwe: LweCiphertext) -> bytes:
    moduli = lwe.basis.moduli
    body = pack_limbs(lwe.b[:, None], moduli) + pack_limbs(lwe.a, moduli)
    return _header(_TYPE_LWE, lwe.ctx.n, len(moduli)) + body


def deserialize_lwe(data: bytes, ctx: CheContext) -> LweCiphertext:
    n, limb_count, off = _parse_header(data, _TYPE_LWE)
    if n != ctx.n:
        raise ValueError("ring degree mismatch")
    basis = ctx.ct_basis if limb_count == len(ctx.ct_basis) else ctx.aug_basis
    b, used = unpack_limbs(data[off:], basis.moduli, 1)
    a, _ = unpack_limbs(data[off + used :], basis.moduli, n)
    return LweCiphertext(ctx, basis, b[:, 0], a)


def rlwe_wire_bytes(n: int, moduli: Tuple[int, ...]) -> int:
    """Exact wire size of an RLWE ciphertext (header + packed limbs)."""
    body = sum(2 * ((_bits_for(q) * n + 7) // 8) for q in moduli)
    return 12 + body


@dataclass
class CommunicationLedger:
    """Byte tally per protocol direction/message kind."""

    entries: List[Tuple[str, int]] = field(default_factory=list)

    def record(self, label: str, payload: bytes) -> bytes:
        self.entries.append((label, len(payload)))
        return payload

    def record_size(self, label: str, size: int) -> None:
        self.entries.append((label, size))

    @property
    def total_bytes(self) -> int:
        return sum(size for _l, size in self.entries)

    def by_label(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for label, size in self.entries:
            out[label] = out.get(label, 0) + size
        return out


# -- key material -------------------------------------------------------------

_TYPE_SECRET = 4
_TYPE_KSK = 5
_TYPE_GALOIS = 6


def serialize_secret_key(sk: "SecretKey") -> bytes:
    """Secret keys serialize as 2-bit-packed ternary coefficients."""
    signed = np.asarray(sk.signed, dtype=np.int64)
    n = signed.shape[0]
    # map {-1,0,1} -> {2,0,1}
    mapped = np.where(signed < 0, 2, signed).astype(np.uint64)
    acc = 0
    for i, v in enumerate(mapped):
        acc |= int(v) << (2 * i)
    body = acc.to_bytes((2 * n + 7) // 8, "little")
    return _header(_TYPE_SECRET, n, 0) + body


def deserialize_secret_key(data: bytes) -> "SecretKey":
    from .keys import SecretKey

    n, _limbs, off = _parse_header(data, _TYPE_SECRET)
    acc = int.from_bytes(data[off:], "little")
    signed = np.empty(n, dtype=np.int64)
    for i in range(n):
        v = (acc >> (2 * i)) & 0b11
        signed[i] = -1 if v == 2 else v
    return SecretKey(signed)


def serialize_keyswitch_key(ksk: "KeySwitchKey", moduli: Tuple[int, ...]) -> bytes:
    """Hybrid switching keys: NTT-domain limb stacks, bit-packed."""
    parts = []
    n = ksk.b_ntt[0].shape[1]
    for i in range(ksk.decomp_count):
        parts.append(pack_limbs(ksk.b_ntt[i], moduli))
        parts.append(pack_limbs(ksk.a_ntt[i], moduli))
    head = _header(_TYPE_KSK, n, len(moduli)) + struct.pack(
        "<H", ksk.decomp_count
    )
    return head + b"".join(parts)


def deserialize_keyswitch_key(data: bytes, ctx: CheContext) -> "KeySwitchKey":
    from .keys import KeySwitchKey

    n, limb_count, off = _parse_header(data, _TYPE_KSK)
    if n != ctx.n or limb_count != len(ctx.aug_basis):
        raise ValueError("key-switch key header mismatch")
    (decomp,) = struct.unpack("<H", data[off : off + 2])
    off += 2
    moduli = ctx.aug_basis.moduli
    b_parts, a_parts = [], []
    for _i in range(decomp):
        b, used = unpack_limbs(data[off:], moduli, n)
        off += used
        a, used = unpack_limbs(data[off:], moduli, n)
        off += used
        b_parts.append(b)
        a_parts.append(a)
    return KeySwitchKey(b_ntt=b_parts, a_ntt=a_parts)


def serialize_galois_keyset(
    keyset: "GaloisKeyset", moduli: Tuple[int, ...]
) -> bytes:
    """Galois keysets: count-prefixed (element, ksk) records."""
    records = []
    for g in sorted(keyset.keys):
        blob = serialize_keyswitch_key(keyset.keys[g], moduli)
        records.append(struct.pack("<II", g, len(blob)) + blob)
    head = MAGIC + struct.pack(
        "<BBHI", _VERSION, _TYPE_GALOIS, len(records), 0
    )
    return head + b"".join(records)


def deserialize_galois_keyset(data: bytes, ctx: CheContext) -> "GaloisKeyset":
    from .keys import GaloisKeyset

    if data[:4] != MAGIC:
        raise ValueError("bad magic; not a CHAM wire object")
    version, tag, count, _zero = struct.unpack("<BBHI", data[4:12])
    if version != _VERSION or tag != _TYPE_GALOIS:
        raise ValueError("not a Galois keyset blob")
    off = 12
    keyset = GaloisKeyset()
    for _ in range(count):
        g, length = struct.unpack("<II", data[off : off + 8])
        off += 8
        keyset.keys[g] = deserialize_keyswitch_key(data[off : off + length], ctx)
        off += length
    return keyset
