"""Extension bench — energy efficiency and the memory system.

The paper reports speed-ups; adopters also ask about joules and DDR
headroom.  Both derive from the same simulators (see `repro.hw.power`
and `repro.hw.memory`), so they inherit the latency model's calibration.
"""

import pytest
from conftest import print_table

from repro.hw.memory import StagingBuffer, job_traffic, sustained_bandwidth
from repro.hw.power import PowerModel, energy_per_hmvp


def test_energy_table():
    rows = []
    for m, n in [(2048, 256), (8192, 4096), (16384, 4096)]:
        out = energy_per_hmvp(m, n)
        rows.append(
            (
                f"{m}x{n}",
                f"{out['cpu_j']:.1f}",
                f"{out['gpu_j']:.1f}",
                f"{out['cham_j']:.2f}",
                f"{out['cham_vs_cpu']:.0f}x",
                f"{out['cham_vs_gpu']:.1f}x",
            )
        )
    print_table(
        "Energy per HMVP (J)",
        ["matrix", "CPU", "GPU", "CHAM", "vs CPU", "vs GPU"],
        rows,
    )
    final = energy_per_hmvp(16384, 4096)
    assert final["cham_vs_cpu"] > 100
    assert final["cham_vs_gpu"] > 3


def test_bandwidth_headroom_table():
    bw = sustained_bandwidth()
    rows = [
        ("per engine", f"{bw['per_engine_gbps']:.2f} GB/s"),
        ("both engines", f"{bw['total_gbps']:.2f} GB/s"),
        ("DDR roof", f"{bw['roof_gbps']:.0f} GB/s"),
        ("fraction used", f"{100 * bw['fraction_of_roof']:.1f}%"),
    ]
    print_table("Sustained DDR bandwidth at full rate", ["stream", "value"], rows)
    assert bw["fraction_of_roof"] < 0.25


def test_traffic_breakdown_table():
    t = job_traffic(rows=4096)
    rows = [(k, f"{v / 2**20:.2f} MiB") for k, v in t.by_stream().items()]
    rows.append(("total", f"{t.total / 2**20:.2f} MiB"))
    print_table("DDR traffic for one 4096x4096 HMVP", ["stream", "bytes"], rows)
    assert t.rows_in / t.total > 0.95  # the matrix stream dominates


def test_staging_buffer_sizing():
    """The engine's 12-poly staging buffer is enough: DMA at PCIe rate
    refills faster than the 3-poly-per-row drain."""
    # PCIe 12.8 GB/s at 300 MHz = ~42.7 B/cycle = 1/768 poly per cycle
    fill = 12.8e9 / 300e6 / (4096 * 8)
    buf = StagingBuffer(
        capacity_polys=12, fill_rate=fill, drain_per_row=3, row_interval=6144
    )
    out = buf.simulate(rows=256)
    rows = [
        ("fill rate", f"{fill * 6144:.1f} polys/interval"),
        ("drain", "3 polys/interval"),
        ("peak occupancy", f"{out['peak_polys']:.1f} polys"),
        ("engine starves", out["starves"]),
    ]
    print_table("Staging buffer (12 URAM polys)", ["metric", "value"], rows)
    assert out["starves"] <= 1


@pytest.mark.benchmark(group="energy")
def test_perf_energy_model(benchmark):
    benchmark(energy_per_hmvp, 4096, 4096)
