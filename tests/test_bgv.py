"""Tests for the BGV scheme and the BFV<->BGV embedding switches."""

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.bgv import BgvScheme, bfv_to_bgv, bgv_to_bfv, conversion_factor
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def schemes():
    params = toy_params(n=128, plain_bits=40)
    bfv = BfvScheme(params, seed=81, max_pack=2)
    bgv = BgvScheme(params, seed=82, shared_secret=bfv.secret_key)
    return bfv, bgv


def _center(x, t):
    half = t // 2
    return np.where(x > half, x - t, x)


def test_encrypt_decrypt(schemes, rng):
    _bfv, bgv = schemes
    vals = rng.integers(-(1 << 30), 1 << 30, 128)
    ct = bgv.encrypt_vector(vals)
    assert np.array_equal(bgv.decrypt_coeffs(ct, 128), vals)


def test_fresh_noise_small(schemes, rng):
    _bfv, bgv = schemes
    ct = bgv.encrypt_vector(rng.integers(-10, 10, 128))
    assert 0 < bgv.noise_bits(ct) < 8


def test_homomorphic_addition(schemes, rng):
    _bfv, bgv = schemes
    a = rng.integers(-500, 500, 128)
    b = rng.integers(-500, 500, 128)
    ct = bgv.add(bgv.encrypt_vector(a), bgv.encrypt_vector(b))
    assert np.array_equal(bgv.decrypt_coeffs(ct, 128), a + b)


def test_dot_product(schemes, rng):
    _bfv, bgv = schemes
    v = rng.integers(-50, 50, 128)
    row = rng.integers(-50, 50, 128)
    dp = bgv.dot_product(bgv.encrypt_vector(v), row)
    got = int(bgv.decrypt_coeffs(dp, 1)[0])
    assert got == int(np.dot(row.astype(object), v.astype(object)))


def test_decrypt_rejects_augmented(schemes, rng):
    bfv, bgv = schemes
    ct = bfv.encrypt_vector([1, 2], augmented=True)
    with pytest.raises(ValueError, match="normal basis"):
        bgv.decrypt(ct)


def test_conversion_factors_are_inverse(schemes):
    bfv, _bgv = schemes
    t = bfv.params.plain_modulus
    f1 = conversion_factor(bfv.params, "bgv->bfv")
    f2 = conversion_factor(bfv.params, "bfv->bgv")
    assert f1 * f2 % t == 1
    with pytest.raises(ValueError):
        conversion_factor(bfv.params, "sideways")


def test_bgv_to_bfv_message_map(schemes, rng):
    bfv, bgv = schemes
    t = bfv.params.plain_modulus
    vals = rng.integers(-1000, 1000, 128)
    converted = bgv_to_bfv(bgv, bgv.encrypt_vector(vals))
    dec = bfv.decrypt_coeffs(converted, 128)
    f = conversion_factor(bfv.params, "bgv->bfv")
    want = _center((vals.astype(object) * f) % t, t)
    assert np.array_equal(np.array([int(x) for x in dec], dtype=object), want)


def test_conversion_preserves_noise(schemes, rng):
    bfv, bgv = schemes
    ct = bgv.encrypt_vector(rng.integers(-100, 100, 128))
    before = bgv.noise_bits(ct)
    after = bfv.noise_bits(bgv_to_bfv(bgv, ct))
    assert after == pytest.approx(before, abs=1.0)


def test_roundtrip_is_identity(schemes, rng):
    bfv, bgv = schemes
    vals = rng.integers(-1000, 1000, 128)
    ct = bgv.encrypt_vector(vals)
    back = bfv_to_bgv(bfv, bgv_to_bfv(bgv, ct))
    assert np.array_equal(bgv.decrypt_coeffs(back, 128), vals)


def test_bfv_to_bgv_then_bgv_arithmetic(schemes, rng):
    """Convert a BFV ciphertext and keep computing in the BGV domain."""
    bfv, bgv = schemes
    t = bfv.params.plain_modulus
    vals = rng.integers(-100, 100, 128)
    ct = bfv.encrypt_vector(vals, augmented=False)
    as_bgv = bfv_to_bgv(bfv, ct)
    doubled = bgv.add(as_bgv, as_bgv)
    f = conversion_factor(bfv.params, "bfv->bgv")
    want = _center((2 * vals.astype(object) * f) % t, t)
    got = bgv.decrypt_coeffs(doubled, 128)
    assert np.array_equal(np.array([int(x) for x in got], dtype=object), want)


def test_bfv_to_bgv_rejects_augmented(schemes, rng):
    bfv, _bgv = schemes
    ct = bfv.encrypt_vector([1], augmented=True)
    with pytest.raises(ValueError):
        bfv_to_bgv(bfv, ct)


def test_three_scheme_shared_key(schemes, rng):
    """BFV, BGV and CKKS instances on one secret key — the hybrid
    deployment the paper's introduction motivates."""
    from repro.he.ckks import CkksScheme

    bfv, bgv = schemes
    ckks = CkksScheme(
        bfv.params, seed=83, shared_secret=bfv.secret_key, max_pack=2
    )
    vals = rng.integers(-100, 100, 16)
    assert np.array_equal(
        bgv.decrypt_coeffs(bgv.encrypt_vector(vals), 16), vals
    )
    assert np.array_equal(
        bfv.decrypt_coeffs(bfv.encrypt_vector(vals, augmented=False), 16), vals
    )
    out = ckks.decrypt_coeffs(
        ckks.encrypt_coeffs(vals.astype(float), augmented=False), 16
    )
    assert np.max(np.abs(out - vals)) < 1e-4
