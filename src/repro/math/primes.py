"""Number-theoretic helpers: primality, NTT-friendly primes, roots of unity.

A negacyclic NTT over ``Z_q[X]/(X^N + 1)`` needs a primitive ``2N``-th root
of unity mod ``q``, which exists iff ``q ≡ 1 (mod 2N)``.  CHAM's moduli

* ``q0 = 2**34 + 2**27 + 1``
* ``q1 = 2**34 + 2**19 + 1``
* ``p  = 2**38 + 2**23 + 1``

are all prime and ``≡ 1 (mod 8192)``, so they support ``N = 4096`` (and any
smaller power of two, which the test-suite uses for fast cases).
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Tuple

__all__ = [
    "is_prime",
    "is_ntt_friendly",
    "find_ntt_prime",
    "find_low_hamming_ntt_prime",
    "primitive_root",
    "root_of_unity",
    "negacyclic_psi",
    "CHAM_Q0",
    "CHAM_Q1",
    "CHAM_P",
]

#: CHAM ciphertext modulus limb 0 (35-bit, Hamming weight 3).
CHAM_Q0 = 2**34 + 2**27 + 1
#: CHAM ciphertext modulus limb 1 (35-bit, Hamming weight 3).
CHAM_Q1 = 2**34 + 2**19 + 1
#: CHAM special key-switching modulus (39-bit, Hamming weight 3).
CHAM_P = 2**38 + 2**23 + 1

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test (probabilistic, error < 4**-rounds)."""
    if n < 2:
        return False
    for sp in _SMALL_PRIMES:
        if n % sp == 0:
            return n == sp
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xC4A)  # deterministic witnesses for reproducibility
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            # scalar Python-int square: exact at any candidate width
            x = x * x % n  # repro: noqa REPRO101
            if x == n - 1:
                break
        else:
            return False
    return True


def is_ntt_friendly(q: int, n: int) -> bool:
    """True iff prime ``q`` supports a negacyclic NTT of length ``n``."""
    return q % (2 * n) == 1 and is_prime(q)


def find_ntt_prime(bits: int, n: int, *, skip: int = 0) -> int:
    """Smallest ``bits``-bit prime ``≡ 1 (mod 2n)``, skipping ``skip`` hits.

    Used by tests and by parameter sets other than the paper's.
    """
    step = 2 * n
    q = (1 << (bits - 1)) + 1
    q += (-(q - 1)) % step  # round up to ≡ 1 (mod 2n)
    found = 0
    while q < (1 << bits):
        if is_prime(q):
            if found == skip:
                return q
            found += 1
        q += step
    raise ValueError(f"no {bits}-bit NTT prime for n={n} (skip={skip})")


def find_low_hamming_ntt_prime(bits: int, n: int) -> int:
    """A prime of the form ``2**(bits-1) + 2**e + 1`` that is NTT-friendly.

    This is the shape CHAM selects so that modular reduction becomes three
    shift-adds (Section IV-A3).  Raises if none exists for the given width.
    """
    log2n = (2 * n).bit_length() - 1
    for e in range(log2n, bits - 1):
        q = (1 << (bits - 1)) + (1 << e) + 1
        if is_ntt_friendly(q, n):
            return q
    raise ValueError(f"no low-Hamming {bits}-bit NTT prime for n={n}")


@lru_cache(maxsize=None)
def _factorize(n: int) -> Tuple[int, ...]:
    """Distinct prime factors of ``n`` by trial division (n is q-1, small).

    Returns a tuple: the result is cached and shared, so it must be
    immutable.
    """
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return tuple(factors)


@lru_cache(maxsize=None)
def primitive_root(q: int) -> int:
    """Smallest primitive root modulo prime ``q``."""
    if not is_prime(q):
        raise ValueError(f"{q} is not prime")
    phi = q - 1
    factors = _factorize(phi)
    for g in range(2, q):
        if all(pow(g, phi // f, q) != 1 for f in factors):
            return g
    raise ArithmeticError("unreachable: every prime has a primitive root")


@lru_cache(maxsize=None)
def root_of_unity(order: int, q: int) -> int:
    """A primitive ``order``-th root of unity modulo prime ``q``."""
    if (q - 1) % order != 0:
        raise ValueError(f"{q} has no order-{order} root of unity")
    g = primitive_root(q)
    w = pow(g, (q - 1) // order, q)
    # sanity: w has exact order `order`
    assert pow(w, order, q) == 1
    for f in _factorize(order):
        assert pow(w, order // f, q) != 1
    return w


def negacyclic_psi(n: int, q: int) -> int:
    """Primitive ``2n``-th root of unity ψ with ψ**n ≡ -1 (mod q).

    ψ is the twisting factor that turns cyclic convolution into negacyclic
    convolution; ψ² is the n-th root used inside the NTT butterflies.
    """
    psi = root_of_unity(2 * n, q)
    assert pow(psi, n, q) == q - 1
    return psi
