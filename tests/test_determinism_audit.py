"""Determinism audit, driven by the REPRO103 analysis rule.

A meta-test that scans the test suite, the benchmarks, *and* the
library itself for randomness that is not explicitly seeded.  The
reproducibility story is "same checkout, same results"; a single
``default_rng()`` with no seed or a global ``np.random.*`` call quietly
breaks that, and the flake only surfaces weeks later on an unrelated
PR.

Earlier revisions of this audit carried their own regex pattern table;
it is now the :class:`repro.analysis.rules.UnseededRandomness` rule
(REPRO103), shared with ``repro lint`` — one detector, three trees.
REPRO103's default scope skips test files (tests may deliberately
construct odd generators *as fixtures*), so the audit applies it with
``respect_scope=False`` to extend the same discipline to this suite.
(Hypothesis strategies are exempt by construction: hypothesis owns its
own seeding and shrinking database, and its API never goes through the
RNG constructors the rule looks for.)
"""

from pathlib import Path

import pytest

from repro.analysis import get_rules, lint_file, render_text
from repro.analysis.core import SourceFile, iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[1]
TEST_ROOT = REPO_ROOT / "tests"
BENCH_ROOT = REPO_ROOT / "benchmarks"
SRC_ROOT = REPO_ROOT / "src" / "repro"

RULE = get_rules(["REPRO103"])


def _source_files():
    files = iter_python_files([TEST_ROOT, BENCH_ROOT, SRC_ROOT])
    return [f for f in files if f.name != Path(__file__).name]


def test_audit_finds_these_files():
    names = {f.name for f in _source_files()}
    # sanity: the audit is actually looking at the suite and the library
    assert "conftest.py" in names
    assert "test_serve.py" in names
    assert "context.py" in names
    assert len(names) > 10


@pytest.mark.parametrize(
    "path", _source_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_no_unseeded_randomness(path):
    src = SourceFile.from_path(path, root=REPO_ROOT)
    # scope off: REPRO103 normally exempts test files, the audit does not
    diags = lint_file(src, rules=RULE, respect_scope=False)
    assert not diags, (
        "unseeded randomness (REPRO103):\n" + render_text(diags)
    )


def test_rule_catches_the_historical_shapes():
    """The regex table this audit used to carry, as rule fixtures —
    proof the engine swap lost no coverage."""
    from repro.analysis import lint_source

    historical = [
        "rng = default_rng()",
        "rng = np.random.default_rng()",
        "rng = random.Random()",
        "x = np.random.randint(0, 10)",
        "np.random.seed(0)",
        "x = random.random()",
        "rng = default_rng(None)",
        "rng = default_rng(int(time.time()))",
        "rng = np.random.default_rng(os.urandom(8))",
    ]
    for snippet in historical:
        diags = lint_source(snippet + "\n", rules=RULE)
        assert [d.rule_id for d in diags] == ["REPRO103"], snippet


def test_seeded_generators_pass():
    from repro.analysis import lint_source

    clean = (
        "rng = np.random.default_rng(0)\n"
        "rng2 = np.random.default_rng(seed)\n"
        "rng3 = random.Random(0xC4A)\n"
        "rng4 = default_rng(12345)\n"
    )
    assert lint_source(clean, rules=RULE) == []
