"""Multi-vector (batched) HMVP: encrypted matrix-matrix products.

The paper's introduction cites batched processing as the standard
amortization trick ("up to 4096 encrypted images can be evaluated
simultaneously").  For CHAM's workload shape this means one plaintext
matrix applied to *many* encrypted vectors — e.g. per-sample gradient
vectors in HeteroLR, or a batch of private-inference activations.

:class:`BatchedHmvp` amortizes what the hardware amortizes:

* the matrix rows are encoded and forward-NTT'd **once** (they stay
  resident in the engines' URAM staging buffers, Section III-C) and
  reused across every vector;
* each vector then costs only its own transforms, products and pack.

Functionally this is exact; the op-count deltas (cached vs. uncached)
feed the performance model and the batching bench.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..he.bfv import BfvScheme
from ..he.lwe import LweCiphertext
from ..he.rlwe import RlweCiphertext, plaintext_limbs
from ..math.modular import modmul_vec
from .hmvp import HmvpOpCount, HmvpResult


__all__ = ["BatchedHmvp"]


class BatchedHmvp:
    """Apply one plaintext matrix to many encrypted vectors."""

    def __init__(self, scheme: BfvScheme, matrix: Sequence[Sequence[int]]) -> None:
        self.scheme = scheme
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        m, n = matrix.shape
        ring_n = scheme.params.n
        if m > ring_n or n > ring_n:
            raise ValueError("BatchedHmvp covers single-tile matrices")
        self.matrix = matrix
        ctx = scheme.ctx
        basis = ctx.aug_basis
        # one-time: encode every row (Eq. 1) and hoist it to NTT domain
        self._rows_ntt: List[np.ndarray] = []
        for i in range(m):
            pt = scheme.encoder.encode_row(matrix[i])
            limbs = plaintext_limbs(ctx, pt, basis)
            self._rows_ntt.append(ctx.ntt_limbs(limbs, basis))
        self.encode_ops = HmvpOpCount(ntts=m * len(basis))

    @property
    def shape(self) -> "tuple[int, int]":
        return tuple(self.matrix.shape)

    def _dot_cached(self, ct: RlweCiphertext, row_ntt: np.ndarray) -> RlweCiphertext:
        """Stages 1-4 with the plaintext transform already resident."""
        ctx = self.scheme.ctx
        basis = ct.basis
        comps = []
        for comp in (ct.c0, ct.c1):
            comp_ntt = ctx.ntt_limbs(comp, basis)
            prod = np.stack(
                [
                    modmul_vec(comp_ntt[i], row_ntt[i], q)
                    for i, q in enumerate(basis)
                ]
            )
            comps.append(ctx.intt_limbs(prod, basis))
        out = RlweCiphertext(ctx, basis, comps[0], comps[1])
        return out.rescale()

    def multiply_one(self, ct_v: RlweCiphertext) -> HmvpResult:
        """Full Alg. 1 for one vector against the cached matrix."""
        if not ct_v.is_augmented:
            raise ValueError("vector ciphertext must be augmented")
        m, n = self.matrix.shape
        lwes: List[LweCiphertext] = []
        for row_ntt in self._rows_ntt:
            dot = self._dot_cached(ct_v, row_ntt)
            lwes.append(self.scheme.extract(dot, 0))
        packed = self.scheme.pack(lwes)
        limbs = len(self.scheme.ctx.ct_basis)
        limbs_aug = limbs + 1
        ops = HmvpOpCount(
            rows=m,
            cols=n,
            dot_products=m,
            # the row transforms are cached: only ct fwd + product inverse
            ntts=2 * limbs_aug,
            intts=m * 2 * limbs_aug,
            pointwise_mults=m * 2 * limbs_aug,
            rescales=m,
            extracts=m,
        ) + HmvpOpCount.for_pack(m, limbs, limbs_aug)
        return HmvpResult(packs=[packed], rows=m, cols=n, ops=ops)

    def multiply_batch(self, cts: Sequence[RlweCiphertext]) -> List[HmvpResult]:
        """Apply the cached matrix to a batch of encrypted vectors."""
        return [self.multiply_one(ct) for ct in cts]

    def amortized_op_count(self, batch: int) -> HmvpOpCount:
        """Total ops for a batch, including the one-time encode."""
        total = HmvpOpCount()
        for name in vars(total):
            setattr(total, name, getattr(self.encode_ops, name))
        m, n = self.matrix.shape
        limbs = len(self.scheme.ctx.ct_basis)
        limbs_aug = limbs + 1
        per_vec = HmvpOpCount(
            rows=m,
            cols=n,
            dot_products=m,
            ntts=2 * limbs_aug,
            intts=m * 2 * limbs_aug,
            pointwise_mults=m * 2 * limbs_aug,
            rescales=m,
            extracts=m,
        ) + HmvpOpCount.for_pack(m, limbs, limbs_aug)
        for _ in range(batch):
            total = total + per_vec
        return total
