"""The codebase-specific lint rules (REPRO101..REPRO108).

Each rule encodes one invariant the CHAM reproduction depends on but the
Python type system cannot enforce.  The catalog (IDs, rationale tied to
the paper's arithmetic contracts, suppression policy) is documented in
``docs/ARCHITECTURE.md`` section 8.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence

from .core import (
    Diagnostic,
    Rule,
    SourceFile,
    register,
)

__all__ = ["MAX_MODULUS_BITS"]

#: Mirror of :data:`repro.math.modular.MAX_MODULUS_BITS`.  Redeclared so
#: the analysis package imports no NumPy-backed module; a test pins the
#: two values together.
MAX_MODULUS_BITS = 41


# ---------------------------------------------------------------------------
# shared AST helpers


def _qualname(node: ast.AST) -> str:
    """Dotted name for ``Name``/``Attribute`` chains (else '')."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_test_path(rel_path: str) -> bool:
    parts = rel_path.split("/")
    name = parts[-1]
    return (
        "tests" in parts
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _const_int(node: ast.AST) -> Optional[int]:
    """Fold a constant integer expression (+, -, *, **, <<) or None."""
    if isinstance(node, ast.Constant):
        return node.value if isinstance(node.value, int) else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        if isinstance(node.op, ast.Pow) and right >= 0:
            return left**right
        if isinstance(node.op, ast.LShift) and right >= 0:
            return left << right
    return None


def _contains_none(nodes: Sequence[ast.AST]) -> bool:
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Constant) and node.value is None:
                return True
    return False


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure is cosmetic
        return "<expr>"


# ---------------------------------------------------------------------------
# REPRO101 — overflow-unsafe modular multiplication


@register
class OverflowUnsafeModmul(Rule):
    """Flag ``(a * b) % q``-shaped reductions outside the blessed helpers.

    The exact hazard :mod:`repro.math.modular` documents around
    ``SPLIT_BITS``: two 35-bit residues multiply to 70 bits, silently
    wrapping a NumPy ``uint64``.  Every residue product must route
    through ``modmul_vec`` (or stay in arbitrary-precision Python ints /
    object dtype, in which case the site carries a justified noqa).
    """

    id = "REPRO101"
    name = "overflow-unsafe-modmul"
    rationale = (
        "products of two mod-q residues can exceed 64 bits for CHAM's "
        "35/39-bit moduli; only modular.modmul_vec's split-multiply path "
        "(or exact big-int arithmetic) is overflow-safe"
    )

    _BLESSED_SUFFIX = "math/modular.py"

    def applies_to(self, rel_path: str) -> bool:
        return not rel_path.endswith(self._BLESSED_SUFFIX) and not _is_test_path(
            rel_path
        )

    @staticmethod
    def _is_int_coercion(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "int"
        )

    def _flag_mult(self, mult: ast.BinOp) -> bool:
        # const * var is index/scale arithmetic, not a residue product;
        # residue products multiply two data operands.  An operand
        # coerced through int(...) is an arbitrary-precision Python int,
        # so the product cannot wrap.
        for operand in (mult.left, mult.right):
            if _const_int(operand) is not None:
                return False
            if self._is_int_coercion(operand):
                return False
        return True

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        # a `(a * b) % q` that is itself the sole argument of int(...)
        # is scalar Python-int arithmetic (exact at any width)
        int_wrapped = {
            id(node.args[0])
            for node in ast.walk(src.tree)
            if self._is_int_coercion(node) and len(node.args) == 1
        }
        for node in ast.walk(src.tree):
            mult: Optional[ast.BinOp] = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if id(node) not in int_wrapped and isinstance(
                    node.left, ast.BinOp
                ) and isinstance(node.left.op, ast.Mult):
                    mult = node.left
            elif isinstance(node, ast.Call) and _qualname(node.func) in (
                "np.mod",
                "numpy.mod",
            ):
                if (
                    node.args
                    and isinstance(node.args[0], ast.BinOp)
                    and isinstance(node.args[0].op, ast.Mult)
                ):
                    mult = node.args[0]
            if mult is not None and self._flag_mult(mult):
                out.append(
                    self.diag(
                        src,
                        node,
                        f"raw multiply-then-reduce `{_unparse(node)}`: "
                        "route residue products through "
                        "repro.math.modular.modmul_vec (35-bit moduli "
                        "overflow uint64 under naive (a*b) % q)",
                    )
                )
        return out


# ---------------------------------------------------------------------------
# REPRO102 — dtype discipline on residue arrays


@register
class DtypeDiscipline(Rule):
    """Residue/centered-lift arrays must not pass through lossy dtypes.

    Signed centering combines limbs into >64-bit integers, so it must
    use object dtype (``center_lift_vec``); ``float64`` has 53 mantissa
    bits and silently rounds 39-bit-modulus products.
    """

    id = "REPRO102"
    name = "dtype-discipline"
    rationale = (
        "astype(int64/float) on residue arrays truncates multi-limb "
        "values; np.mod on float operands rounds 35+ bit residues "
        "(float64 has a 53-bit mantissa)"
    )

    _LOSSY_DTYPES = {
        "np.int64",
        "numpy.int64",
        "np.int32",
        "numpy.int32",
        "int",
        "np.float64",
        "numpy.float64",
        "np.float32",
        "numpy.float32",
        "float",
    }
    _FLOAT_MARKERS = (
        "astype(np.float",
        "astype(numpy.float",
        "astype(float",
        "dtype=np.float",
        "dtype=numpy.float",
        "dtype=float",
    )
    _RESIDUE_MARKERS = ("coeffs", "residue", "limb")

    def applies_to(self, rel_path: str) -> bool:
        return (
            "repro/math/" in rel_path or "repro/he/" in rel_path
        ) and not _is_test_path(rel_path)

    def _dtype_arg(self, call: ast.Call) -> Optional[str]:
        if call.args:
            name = _qualname(call.args[0])
            if name:
                return name
            if isinstance(call.args[0], ast.Constant) and isinstance(
                call.args[0].value, str
            ):
                return call.args[0].value
        return None

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # (a) lossy astype on something that reads like residue data
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                dtype = self._dtype_arg(node)
                if dtype in self._LOSSY_DTYPES:
                    receiver = _unparse(func.value).lower()
                    # rounding floats into integers (np.rint/np.round) is
                    # the CKKS scale-and-round idiom, not a residue cast
                    rounded = "rint(" in receiver or "round(" in receiver
                    if not rounded and any(
                        m in receiver for m in self._RESIDUE_MARKERS
                    ):
                        out.append(
                            self.diag(
                                src,
                                node,
                                f"residue array cast through lossy dtype "
                                f"`{dtype}` (`{_unparse(node)}`): signed "
                                "centering must use object dtype "
                                "(center_lift_vec) so multi-limb values "
                                "stay exact",
                            )
                        )
            # (b) np.mod on a float operand
            if _qualname(func) in ("np.mod", "numpy.mod") and node.args:
                first = _unparse(node.args[0])
                is_float_literal = isinstance(
                    node.args[0], ast.Constant
                ) and isinstance(node.args[0].value, float)
                if is_float_literal or any(
                    m in first for m in self._FLOAT_MARKERS
                ):
                    out.append(
                        self.diag(
                            src,
                            node,
                            f"np.mod on a float operand (`{_unparse(node)}`):"
                            " reduce exact integers (uint64 or object "
                            "dtype), floats round residues above 53 bits",
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# REPRO103 — unseeded randomness in library code


@register
class UnseededRandomness(Rule):
    """All randomness in ``src/repro`` must be explicitly seeded.

    The reproduction's contract is "same checkout, same results"
    (golden vectors, determinism audit); a single unseeded generator
    breaks it weeks later on an unrelated PR.
    """

    id = "REPRO103"
    name = "unseeded-randomness"
    rationale = (
        "reproducibility contract: every Generator/Random must take an "
        "explicit deterministic seed (tests pin golden vectors against it)"
    )

    _NP_LEGACY = {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "integers",
        "standard_normal",
    }
    _PY_RANDOM_FNS = {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "getrandbits",
        "seed",
    }
    _ENTROPY_SOURCES = ("time.time", "time.time_ns", "os.urandom", "os.getpid")

    def applies_to(self, rel_path: str) -> bool:
        return not _is_test_path(rel_path)

    def _check_seed_args(
        self, src: SourceFile, node: ast.Call, ctor: str
    ) -> Optional[Diagnostic]:
        args: List[ast.AST] = list(node.args) + [
            kw.value for kw in node.keywords if kw.arg in (None, "seed")
        ]
        if not args:
            return self.diag(
                src, node, f"{ctor} constructed without a seed"
            )
        if _contains_none(args):
            return self.diag(
                src,
                node,
                f"{ctor} may receive None (unseeded): resolve the "
                "optional seed to a deterministic value first",
            )
        for arg in args:
            for sub in ast.walk(arg):
                if _qualname(sub) in self._ENTROPY_SOURCES:
                    return self.diag(
                        src,
                        node,
                        f"{ctor} seeded from a non-deterministic source "
                        f"(`{_unparse(arg)}`)",
                    )
        return None

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = _qualname(node.func)
            if qual in (
                "np.random.default_rng",
                "numpy.random.default_rng",
                "default_rng",
            ):
                diag = self._check_seed_args(src, node, "default_rng")
                if diag:
                    out.append(diag)
            elif qual in ("random.Random", "random.SystemRandom"):
                if qual.endswith("SystemRandom"):
                    out.append(
                        self.diag(
                            src, node, "SystemRandom is never deterministic"
                        )
                    )
                else:
                    diag = self._check_seed_args(src, node, "random.Random")
                    if diag:
                        out.append(diag)
            elif qual.startswith(("np.random.", "numpy.random.")):
                attr = qual.rsplit(".", 1)[1]
                if attr in self._NP_LEGACY:
                    out.append(
                        self.diag(
                            src,
                            node,
                            f"legacy global-state RNG `{qual}`: use a "
                            "seeded np.random.default_rng(seed) Generator",
                        )
                    )
            elif qual.startswith("random."):
                attr = qual.split(".", 1)[1]
                if attr in self._PY_RANDOM_FNS:
                    out.append(
                        self.diag(
                            src,
                            node,
                            f"module-level stdlib RNG `{qual}` shares "
                            "unseeded global state: use a seeded "
                            "random.Random(seed) instance",
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# REPRO104 — blocking calls inside async def


@register
class BlockingCallInAsync(Rule):
    """The serving layer must never block the event loop.

    ``HmvpServer`` overlaps engine workers on one loop; a single
    ``time.sleep`` or sync file read stalls every in-flight request.
    Blocking work belongs in ``loop.run_in_executor`` and device polling
    in ``FpgaRuntime.poll_async``.
    """

    id = "REPRO104"
    name = "blocking-call-in-async"
    rationale = (
        "one blocking call inside async def stalls every request on the "
        "event loop; use asyncio.sleep / run_in_executor / poll_async"
    )

    _BLOCKING_QUALNAMES = {
        "time.sleep": "use `await asyncio.sleep(...)`",
        "open": "file I/O blocks the loop; use run_in_executor",
        "input": "blocking stdin read",
    }
    _BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.request.")
    _BLOCKING_ATTRS = {
        "read_text": "file I/O blocks the loop; use run_in_executor",
        "write_text": "file I/O blocks the loop; use run_in_executor",
        "read_bytes": "file I/O blocks the loop; use run_in_executor",
        "write_bytes": "file I/O blocks the loop; use run_in_executor",
        "poll": "sync poll loop; use FpgaRuntime.poll_async",
    }

    def applies_to(self, rel_path: str) -> bool:
        return not _is_test_path(rel_path)

    def check(self, src: SourceFile) -> List[Diagnostic]:
        rule = self
        out: List[Diagnostic] = []

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.async_depth = 0

            def visit_AsyncFunctionDef(
                self, node: ast.AsyncFunctionDef
            ) -> None:
                self.async_depth += 1
                self.generic_visit(node)
                self.async_depth -= 1

            def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
                # a nested sync def runs outside the coroutine frame
                saved, self.async_depth = self.async_depth, 0
                self.generic_visit(node)
                self.async_depth = saved

            def visit_Lambda(self, node: ast.Lambda) -> None:
                saved, self.async_depth = self.async_depth, 0
                self.generic_visit(node)
                self.async_depth = saved

            def visit_Call(self, node: ast.Call) -> None:
                if self.async_depth:
                    qual = _qualname(node.func)
                    hint = rule._BLOCKING_QUALNAMES.get(qual)
                    if hint is None and qual.startswith(
                        rule._BLOCKING_PREFIXES
                    ):
                        hint = "blocking network/process call"
                    if (
                        hint is None
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in rule._BLOCKING_ATTRS
                    ):
                        hint = rule._BLOCKING_ATTRS[node.func.attr]
                    if hint is not None:
                        out.append(
                            rule.diag(
                                src,
                                node,
                                f"blocking call `{_unparse(node.func)}` "
                                f"inside async def: {hint}",
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(src.tree)
        return out


# ---------------------------------------------------------------------------
# REPRO105 — modulus not validated against MAX_MODULUS_BITS


@register
class UnvalidatedModulus(Rule):
    """Literal moduli passed to modular helpers must fit the datapath.

    ``modmul_vec``'s split-multiply proof only holds for moduli up to
    ``MAX_MODULUS_BITS`` (41) bits; a wider literal is a silent-wrap
    bug at every call site the runtime guard does not reach.
    """

    id = "REPRO105"
    name = "bare-modulus-guard"
    rationale = (
        "the split-multiply exactness argument caps moduli at "
        "MAX_MODULUS_BITS bits; wider literals overflow uint64 even "
        "through the blessed helpers"
    )

    #: helper -> index of the modulus positional argument
    _HELPERS = {
        "modmul_vec": 2,
        "modmul_scalar_vec": 2,
        "modadd_vec": 2,
        "modsub_vec": 2,
        "modneg_vec": 1,
        "LowHammingModulus": 0,
        "BarrettReducer": 0,
    }

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _qualname(node.func).rsplit(".", 1)[-1]
            if name not in self._HELPERS:
                continue
            idx = self._HELPERS[name]
            modulus: Optional[ast.AST] = None
            if len(node.args) > idx:
                modulus = node.args[idx]
            for kw in node.keywords:
                if kw.arg == "q":
                    modulus = kw.value
            if modulus is None:
                continue
            value = _const_int(modulus)
            if value is not None and value.bit_length() > MAX_MODULUS_BITS:
                out.append(
                    self.diag(
                        src,
                        node,
                        f"{name} called with a {value.bit_length()}-bit "
                        f"modulus `{_unparse(modulus)}`: the split-multiply "
                        f"path is only exact up to {MAX_MODULUS_BITS} bits "
                        "(repro.math.modular.MAX_MODULUS_BITS)",
                    )
                )
        return out


# ---------------------------------------------------------------------------
# REPRO106 — mutable default arguments / shared-state fields


@register
class MutableDefault(Rule):
    """Mutable literals as defaults become process-wide shared state.

    Engine/serve configs are constructed per request path; one shared
    dict default silently couples independent engines.
    """

    id = "REPRO106"
    name = "mutable-default"
    rationale = (
        "a mutable default is evaluated once and shared by every call / "
        "instance; use None + local construction or field(default_factory)"
    )

    _FACTORY_CALLS = {"list", "dict", "set", "bytearray"}

    def _is_mutable_literal(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(
            node, (ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            qual = _qualname(node.func)
            if qual in self._FACTORY_CALLS:
                return True
            # field(default=[...]) — default_factory is the fix
            if qual.rsplit(".", 1)[-1] == "field":
                for kw in node.keywords:
                    if kw.arg == "default" and self._is_mutable_literal(
                        kw.value
                    ):
                        return True
        return False

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if _qualname(target).rsplit(".", 1)[-1] == "dataclass":
                return True
        return False

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                args = node.args
                for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]:
                    if self._is_mutable_literal(default):
                        out.append(
                            self.diag(
                                src,
                                default,
                                f"mutable default `{_unparse(default)}` is "
                                "shared across calls: default to None and "
                                "construct inside the function",
                            )
                        )
            elif isinstance(node, ast.ClassDef) and self._is_dataclass(node):
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                    elif isinstance(stmt, ast.Assign):
                        value = stmt.value
                    if self._is_mutable_literal(value):
                        out.append(
                            self.diag(
                                src,
                                value,
                                f"mutable dataclass field default "
                                f"`{_unparse(value)}`: use "
                                "field(default_factory=...)",
                            )
                        )
        return out


# ---------------------------------------------------------------------------
# REPRO107 — silent broad except


@register
class SilentBroadExcept(Rule):
    """Broad excepts must not swallow the RAS fault path silently.

    The runtime/serving fault machinery (hang, register corruption,
    retry budget) relies on errors propagating or being recorded; a
    ``except Exception: pass`` converts a fault-injection signal into a
    silent wrong answer.
    """

    id = "REPRO107"
    name = "silent-broad-except"
    rationale = (
        "fault-path errors (DeviceHangError, RegisterLoadError) must "
        "reach the retry/degrade policy or the obs layer, never vanish"
    )

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        return any(
            _qualname(t).rsplit(".", 1)[-1] in self._BROAD for t in types
        )

    def _is_silent(self, body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler):
                if self._is_broad(node) and self._is_silent(node.body):
                    shown = (
                        _unparse(node.type) if node.type else "<bare>"
                    )
                    out.append(
                        self.diag(
                            src,
                            node,
                            f"broad `except {shown}` silently swallows "
                            "errors: catch the specific fault types, "
                            "re-raise, or record through repro.obs",
                        )
                    )
        return out


# ---------------------------------------------------------------------------
# REPRO108 — print() where repro.obs should be used


@register
class PrintInsteadOfObs(Rule):
    """Library code reports through ``repro.obs``, not stdout.

    ``print`` in a hot path is invisible to the metrics registry and the
    span tracer, and corrupts the JSON output modes of the CLI.  Only
    the presentation layer (cli.py, report.py) prints.
    """

    id = "REPRO108"
    name = "print-instead-of-obs"
    rationale = (
        "stdout is the CLI's presentation channel; library layers emit "
        "metrics/spans via repro.obs so production serving can scrape them"
    )

    _PRESENTATION_FILES = {"cli.py", "report.py", "__main__.py"}

    def applies_to(self, rel_path: str) -> bool:
        name = rel_path.rsplit("/", 1)[-1]
        return name not in self._PRESENTATION_FILES and not _is_test_path(
            rel_path
        )

    def check(self, src: SourceFile) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                out.append(
                    self.diag(
                        src,
                        node,
                        "print() in library code: use repro.obs metrics/"
                        "tracing (or return the string to the CLI layer)",
                    )
                )
        return out
