"""Tests for the wire format and communication accounting."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.lwe import extract_lwe
from repro.he.rlwe import decrypt, encrypt
from repro.he.serialization import (
    CommunicationLedger,
    deserialize_lwe,
    deserialize_plaintext,
    deserialize_rlwe,
    pack_limbs,
    rlwe_wire_bytes,
    serialize_lwe,
    serialize_plaintext,
    serialize_rlwe,
    unpack_limbs,
)


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


def test_pack_unpack_roundtrip(ctx128, rng):
    basis = ctx128.aug_basis
    limbs = np.stack(
        [rng.integers(0, q, 128, dtype=np.uint64) for q in basis]
    )
    data = pack_limbs(limbs, basis.moduli)
    back, used = unpack_limbs(data, basis.moduli, 128)
    assert used == len(data)
    assert np.array_equal(back, limbs)


def test_packing_is_compact(ctx128, rng):
    """35-bit limbs pack at ~35/64 of the naive uint64 dump."""
    q = ctx128.ct_basis.moduli[0]
    limbs = rng.integers(0, q, 128, dtype=np.uint64)[None, :]
    data = pack_limbs(limbs, (q,))
    naive = 128 * 8
    assert len(data) == (35 * 128 + 7) // 8
    assert len(data) < 0.6 * naive


def test_plaintext_roundtrip(enc, rng):
    pt = enc.encode_coeffs(rng.integers(-1000, 1000, 128))
    data = serialize_plaintext(pt)
    back = deserialize_plaintext(data, enc.t)
    assert back == pt


def test_plaintext_modulus_check(enc, rng):
    pt = enc.encode_coeffs(rng.integers(-10, 10, 128))
    data = serialize_plaintext(pt)
    with pytest.raises(ValueError, match="modulus mismatch"):
        deserialize_plaintext(data, enc.t + 2)


@pytest.mark.parametrize("augmented", [True, False])
def test_rlwe_roundtrip(ctx128, sk128, enc, rng, augmented):
    pt = enc.encode_coeffs(rng.integers(-1000, 1000, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=augmented)
    data = serialize_rlwe(ct)
    back = deserialize_rlwe(data, ctx128)
    assert back.is_augmented == augmented
    assert np.array_equal(back.c0, ct.c0)
    assert np.array_equal(back.c1, ct.c1)
    assert decrypt(ctx128, sk128, back) == pt


def test_rlwe_wire_size_matches_helper(ctx128, sk128, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-10, 10, 128))
    for augmented in (True, False):
        ct = encrypt(ctx128, sk128, pt, augmented=augmented)
        data = serialize_rlwe(ct)
        assert len(data) == rlwe_wire_bytes(128, ct.basis.moduli)


def test_production_ciphertext_wire_size():
    """Paper accounting: a normal-basis N=4096 ciphertext is 4 polys of
    35-bit coefficients: ~71.7 KiB (vs 128 KiB naive)."""
    from repro.math.primes import CHAM_Q0, CHAM_Q1

    size = rlwe_wire_bytes(4096, (CHAM_Q0, CHAM_Q1))
    assert size == 12 + 4 * ((35 * 4096 + 7) // 8)
    assert 70_000 < size < 74_000


def test_lwe_roundtrip(ctx128, sk128, enc, rng):
    vals = rng.integers(-500, 500, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=False)
    lwe = extract_lwe(ct, 3)
    back = deserialize_lwe(serialize_lwe(lwe), ctx128)
    assert np.array_equal(back.a, lwe.a)
    assert np.array_equal(back.b, lwe.b)
    from repro.he.lwe import decrypt_lwe

    assert decrypt_lwe(ctx128, sk128, back) == vals[3]


def test_bad_magic(ctx128):
    with pytest.raises(ValueError, match="magic"):
        deserialize_rlwe(b"NOPE" + b"\0" * 20, ctx128)


def test_wrong_type_tag(enc, ctx128, rng):
    pt = enc.encode_coeffs(rng.integers(-10, 10, 128))
    data = serialize_plaintext(pt)
    with pytest.raises(ValueError, match="wire type"):
        deserialize_rlwe(data, ctx128)


def test_truncated_payload(ctx128, sk128, enc, rng):
    ct = encrypt(ctx128, sk128, enc.encode_coeffs([1]), augmented=False)
    data = serialize_rlwe(ct)
    with pytest.raises(ValueError, match="truncated"):
        deserialize_rlwe(data[:40], ctx128)


def test_wrong_ring_degree(ctx128, sk128, enc, rng):
    from repro.he.context import CheContext
    from repro.he.params import toy_params

    ct = encrypt(ctx128, sk128, enc.encode_coeffs([1]), augmented=False)
    other = CheContext(toy_params(n=64, plain_bits=40), seed=0)
    with pytest.raises(ValueError, match="degree"):
        deserialize_rlwe(serialize_rlwe(ct), other)


def test_communication_ledger():
    ledger = CommunicationLedger()
    ledger.record("ct", b"x" * 100)
    ledger.record("ct", b"y" * 50)
    ledger.record_size("result", 30)
    assert ledger.total_bytes == 180
    assert ledger.by_label() == {"ct": 150, "result": 30}


def test_secret_key_roundtrip(sk128):
    from repro.he.serialization import (
        deserialize_secret_key,
        serialize_secret_key,
    )

    blob = serialize_secret_key(sk128)
    back = deserialize_secret_key(blob)
    assert np.array_equal(back.signed, sk128.signed)
    # ternary packing: 2 bits per coefficient + 12-byte header
    assert len(blob) == 12 + (2 * 128 + 7) // 8


def test_keyswitch_key_roundtrip(ctx128, sk128):
    from repro.he.keys import generate_keyswitch_key, generate_secret_key
    from repro.he.serialization import (
        deserialize_keyswitch_key,
        serialize_keyswitch_key,
    )

    other = generate_secret_key(ctx128)
    ksk = generate_keyswitch_key(ctx128, other, sk128)
    blob = serialize_keyswitch_key(ksk, ctx128.aug_basis.moduli)
    back = deserialize_keyswitch_key(blob, ctx128)
    assert back.decomp_count == ksk.decomp_count
    for i in range(ksk.decomp_count):
        assert np.array_equal(back.b_ntt[i], ksk.b_ntt[i])
        assert np.array_equal(back.a_ntt[i], ksk.a_ntt[i])
    # and it still switches keys correctly
    from repro.he.encoder import CoefficientEncoder
    from repro.he.keyswitch import apply_keyswitch
    from repro.he.rlwe import decrypt, encrypt

    enc = CoefficientEncoder(ctx128.params)
    pt = enc.encode_coeffs([42, -7])
    ct = encrypt(ctx128, other, pt, augmented=False)
    assert decrypt(ctx128, sk128, apply_keyswitch(ct, back)) == pt


def test_galois_keyset_roundtrip(ctx128, sk128, galois128):
    from repro.he.serialization import (
        deserialize_galois_keyset,
        serialize_galois_keyset,
    )

    blob = serialize_galois_keyset(galois128, ctx128.aug_basis.moduli)
    back = deserialize_galois_keyset(blob, ctx128)
    assert set(back.keys) == set(galois128.keys)
    g = next(iter(galois128.keys))
    assert np.array_equal(back.keys[g].b_ntt[0], galois128.keys[g].b_ntt[0])


def test_galois_keyset_bad_blob(ctx128):
    from repro.he.serialization import deserialize_galois_keyset

    with pytest.raises(ValueError):
        deserialize_galois_keyset(b"XXXX" + b"\0" * 12, ctx128)


def _reference_pack_limbs(limbs, moduli):
    """Pre-vectorization pack_limbs (per-coefficient big-int loop).

    Kept as the wire-format oracle: the NumPy implementation must produce
    byte-identical output for every modulus width.
    """
    limbs = np.asarray(limbs, dtype=np.uint64)
    out = bytearray()
    for i, q in enumerate(moduli):
        bits = (q - 1).bit_length()
        acc = 0
        acc_bits = 0
        chunk = bytearray()
        for v in limbs[i]:
            acc |= int(v) << acc_bits
            acc_bits += bits
            while acc_bits >= 8:
                chunk.append(acc & 0xFF)
                acc >>= 8
                acc_bits -= 8
        if acc_bits:
            chunk.append(acc & 0xFF)
        out += chunk
    return bytes(out)


def _reference_unpack_limbs(data, moduli, n):
    """Pre-vectorization unpack_limbs (per-coefficient big-int loop)."""
    limbs = np.empty((len(moduli), n), dtype=np.uint64)
    offset = 0
    for i, q in enumerate(moduli):
        bits = (q - 1).bit_length()
        total_bytes = (bits * n + 7) // 8
        acc = int.from_bytes(data[offset : offset + total_bytes], "little")
        mask = (1 << bits) - 1
        for j in range(n):
            limbs[i, j] = (acc >> (j * bits)) & mask
        offset += total_bytes
    return limbs, offset


def test_pack_limbs_matches_reference_bytes(rng):
    """Vectorized packing is byte-identical to the original loop, including
    the odd-width 35-bit (q0/q1) and 39-bit (p) CHAM moduli."""
    from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1, find_ntt_prime

    widths = [
        (CHAM_Q0, CHAM_Q1, CHAM_P),  # 35/35/39-bit production moduli
        (find_ntt_prime(17, 8),),  # small odd width
        (find_ntt_prime(20, 8), find_ntt_prime(33, 8)),
        ((1 << 24) + 1,),  # byte-aligned width for contrast
    ]
    for moduli in widths:
        for n in (1, 7, 8, 64):
            limbs = np.stack(
                [rng.integers(0, q, n, dtype=np.uint64) for q in moduli]
            )
            data = pack_limbs(limbs, moduli)
            assert data == _reference_pack_limbs(limbs, moduli), moduli
            back, used = unpack_limbs(data, moduli, n)
            ref_back, ref_used = _reference_unpack_limbs(data, moduli, n)
            assert used == ref_used == len(data)
            assert np.array_equal(back, limbs)
            assert np.array_equal(back, ref_back)


def test_pack_limbs_extreme_values():
    """All-zero and all-max coefficients hit every bit lane."""
    q = 2**34 + 2**27 + 1  # CHAM_Q0, 35 bits
    n = 16
    for fill in (0, q - 1):
        limbs = np.full((1, n), fill, dtype=np.uint64)
        data = pack_limbs(limbs, (q,))
        assert data == _reference_pack_limbs(limbs, (q,))
        back, _ = unpack_limbs(data, (q,), n)
        assert np.array_equal(back, limbs)


def test_pack_roundtrip_property():
    """Hypothesis: arbitrary limb contents survive bit-packing at any
    modulus width in the supported range."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        bits=st.integers(min_value=17, max_value=41),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def inner(bits, seed):
        from repro.math.primes import find_ntt_prime

        q = find_ntt_prime(bits, 8)
        r = np.random.default_rng(seed)
        limbs = r.integers(0, q, 16, dtype=np.uint64)[None, :]
        data = pack_limbs(limbs, (q,))
        back, used = unpack_limbs(data, (q,), 16)
        assert used == len(data)
        assert np.array_equal(back, limbs)

    inner()
