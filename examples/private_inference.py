#!/usr/bin/env python3
"""Private linear-layer inference: conv + dense under HE.

The GAZELLE/Cheetah-style split the paper's introduction motivates:
linear layers run homomorphically (CHAM's workload), non-linear layers
in the clear at the client (standing in for the MPC step).  A tiny
conv->ReLU->dense model classifies synthetic images; the encrypted
pipeline must match the cleartext model bit-for-bit.

Usage: python examples/private_inference.py
"""

import numpy as np

from repro.apps.datasets import make_digit_images
from repro.apps.inference import PrivateInference, TinyModel
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params


def main() -> None:
    print("Private inference: conv (HE) -> ReLU (client) -> dense (HE)")
    print("=" * 62)

    image_size = 12
    scheme = BfvScheme(toy_params(n=256, plain_bits=40), seed=10, max_pack=4)
    model = TinyModel.random(image_size, classes=2, seed=11)
    protocol = PrivateInference(scheme, model, image_size)
    print(f"model: 3x3 conv -> ReLU -> dense {model.fc.shape}")
    print(f"ring : n={scheme.params.n}, one ciphertext per {image_size}x"
          f"{image_size} image")

    images, labels = make_digit_images(6, image_size, seed=12)
    agree = 0
    for i, img in enumerate(images):
        logits_enc = protocol.run(img)
        logits_clear = model.predict_clear(img)
        match = np.array_equal(logits_enc, logits_clear)
        agree += match
        print(f"image {i}: label={labels[i]} enc_logits="
              f"{[int(x) for x in logits_enc]} exact_match={bool(match)}")
    assert agree == len(images)
    print(f"\nall {agree}/{len(images)} encrypted predictions match the "
          "cleartext model exactly (integer pipeline, zero degradation —")
    print("the paper's argument against polynomial activation approximation)")
    print("OK")


if __name__ == "__main__":
    main()
