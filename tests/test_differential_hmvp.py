"""Differential HMVP test (ISSUE 3): three implementations, one answer.

For randomized shapes — non-power-of-two row counts and the single-row
edge case included — the batched engine
(:meth:`repro.core.batch.BatchedHmvp.multiply_batch`), the scalar
Algorithm-1 path (:func:`repro.core.hmvp.hmvp`) and the plaintext
oracle ``A @ v (mod t, centered)`` must agree exactly.  Any divergence
localizes the bug: batch != scalar is the caching/fan-out layer,
scalar != oracle is the HE pipeline itself.
"""

import numpy as np
import pytest

from repro.core.batch import BatchedHmvp
from repro.core.hmvp import hmvp

#: (rows, number of vectors) — non-power-of-two and single-row on purpose
SHAPES = [(1, 2), (3, 1), (5, 3), (7, 2), (8, 2), (13, 1)]


def _centered_mod(values, t):
    """Reduce exact integers into the centered residue system mod t."""
    half = t // 2
    return [((int(v) + half) % t) - half for v in values]


def _oracle(matrix, vector, t):
    exact = matrix.astype(object) @ vector.astype(object)
    return _centered_mod(exact, t)


@pytest.mark.parametrize("rows,count", SHAPES)
def test_batch_vs_scalar_vs_plain(scheme128, rows, count):
    rng = np.random.default_rng(0xD1FF + rows * 31 + count)
    cols = scheme128.params.n
    t = scheme128.params.plain_modulus
    matrix = rng.integers(-200, 200, (rows, cols))
    vectors = [rng.integers(-200, 200, cols) for _ in range(count)]
    cts = [scheme128.encrypt_vector(v) for v in vectors]

    engine = BatchedHmvp(scheme128, matrix)
    batched = engine.multiply_batch(cts)
    assert len(batched) == count
    for i, (vector, ct) in enumerate(zip(vectors, cts)):
        want = _oracle(matrix, vector, t)
        got_batch = batched[i].decrypt(scheme128)[:rows]
        got_scalar = hmvp(scheme128, matrix, ct).decrypt(scheme128)[:rows]
        assert _centered_mod(got_batch, t) == want, f"batch path, vec {i}"
        assert _centered_mod(got_scalar, t) == want, f"scalar path, vec {i}"


def test_agreement_with_plaintext_wraparound(scheme128):
    """Entries large enough that some dot products exceed t/2: all three
    implementations must wrap identically (centered residues)."""
    rng = np.random.default_rng(0xD1FF_FFFF)
    cols = scheme128.params.n
    t = scheme128.params.plain_modulus
    bound = int(np.sqrt(t // cols)) * 4  # pushes some sums past t/2
    matrix = rng.integers(-bound, bound, (4, cols))
    vector = rng.integers(-bound, bound, cols)
    ct = scheme128.encrypt_vector(vector)

    want = _oracle(matrix, vector, t)
    engine = BatchedHmvp(scheme128, matrix)
    got_batch = engine.multiply_batch([ct])[0].decrypt(scheme128)[:4]
    got_scalar = hmvp(scheme128, matrix, ct).decrypt(scheme128)[:4]
    assert _centered_mod(got_batch, t) == want
    assert _centered_mod(got_scalar, t) == want


def test_batch_is_order_independent(scheme128):
    """Reversing the batch order permutes the outputs, nothing else —
    requests are independent (no cross-request state)."""
    rng = np.random.default_rng(0xD1FF_0123)
    cols = scheme128.params.n
    matrix = rng.integers(-50, 50, (5, cols))
    vectors = [rng.integers(-50, 50, cols) for _ in range(3)]
    cts = [scheme128.encrypt_vector(v) for v in vectors]

    engine = BatchedHmvp(scheme128, matrix)
    fwd = [r.decrypt(scheme128)[:5].tolist() for r in engine.multiply_batch(cts)]
    rev = [
        r.decrypt(scheme128)[:5].tolist()
        for r in engine.multiply_batch(list(reversed(cts)))
    ]
    assert fwd == list(reversed(rev))
