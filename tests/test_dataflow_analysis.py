"""Tests for the abstract HE-state interpreter (REPRO201..206).

Three layers, mirroring how the analysis is built:

* lattice unit tests — joins, widening, container mixing;
* interpreter behavior — loops reach a fixed point (a loop that
  rescales N times widens the level to unknown instead of diverging or
  firing), branches join (diverging domains become unknown, which must
  *suppress* downstream checks), summaries flow across same-module
  calls;
* per-rule fixtures — each rule fires on its hazard, stays quiet on the
  disciplined version, and honors ``# repro: noqa``;

plus the self-check: ``src/repro`` is clean under all six rules, and
the full-tree analysis fits the CI timing budget.
"""

import time
from pathlib import Path

import pytest

from repro.analysis import get_rules, lint_paths, lint_source
from repro.analysis.dataflow import (
    DEFAULT_LEVEL,
    MAX_LOOP_ITERATIONS,
    TRANSFERS,
    ContainerState,
    HEState,
    analyze_source,
)
from repro.analysis.core import SourceFile

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

DATAFLOW_IDS = [f"REPRO20{i}" for i in range(1, 7)]


def run_rule(rule_id, text):
    return lint_source(text, rules=get_rules([rule_id]))


def fired(rule_id, text):
    return [d.line for d in run_rule(rule_id, text)]


# ---------------------------------------------------------------------------
# lattice


class TestLattice:
    def test_join_keeps_agreement_and_tops_disagreement(self):
        a = HEState(basis="base", domain="ntt", level=1)
        b = HEState(basis="base", domain="coeff", level=1)
        j = a.join(b)
        assert j.basis == "base"
        assert j.domain is None  # disagreement widens to unknown
        assert j.level == 1

    def test_join_is_commutative_and_idempotent(self):
        a = HEState(basis="aug", domain="ntt", level=2, needs_rescale=True)
        b = HEState(basis="base", domain="ntt", level=1)
        assert a.join(b) == b.join(a)
        assert a.join(a) == a

    def test_unknown_state_is_never_definite(self):
        assert not HEState().is_definite
        assert HEState(level=0).is_definite

    def test_container_store_tracks_mixing(self):
        c = ContainerState()
        c = c.store(HEState(domain="ntt", level=1))
        assert not c.mixed_domain
        c = c.store(HEState(domain="coeff", level=1))
        assert c.mixed_domain
        assert not c.mixed_level
        loaded = c.load()
        assert loaded.from_mixed
        assert loaded.domain is None

    def test_container_same_state_does_not_mix(self):
        c = ContainerState()
        c = c.store(HEState(domain="ntt", level=1))
        c = c.store(HEState(domain="ntt", level=1))
        assert not c.mixed_domain and not c.mixed_level
        assert not c.load().from_mixed

    def test_transfer_table_covers_the_api_surface(self):
        # the rules are only as good as the table: pin the load-bearing
        # entries so a refactor that drops one fails loudly
        for name in (
            "encrypt",
            "encrypt_vector",
            "ntt_limbs",
            "intt_limbs",
            "multiply_plain",
            "modadd_vec",
            "modsub_vec",
            "rescale_last",
            "extend_to",
            "apply_keyswitch",
            "pack_lwes",
            "pack_stacked_lwes",
            "decrypt",
        ):
            assert name in TRANSFERS, name


# ---------------------------------------------------------------------------
# interpreter behavior


class TestInterpreter:
    def test_summaries_flow_across_same_module_calls(self):
        src = SourceFile(
            "def make(scheme, v):\n"
            "    return scheme.encrypt(v)\n"
            "def use(scheme, v):\n"
            "    ct = make(scheme, v)\n"
            "    return rescale_last(rescale_last(ct))\n",
            "m.py",
        )
        analysis = analyze_source(src)
        assert analysis.summaries["make"].level == DEFAULT_LEVEL
        # encrypt -> level 1; second rescale underflows via the summary
        assert any(f.rule_id == "REPRO205" for f in analysis.findings)

    def test_loop_that_rescales_reaches_fixed_point_by_widening(self):
        # the level strictly decreases each iteration: no finite join
        # converges, so the widening must kick in and the level must
        # end the loop unknown — in particular REPRO205 must NOT fire
        # (the loop bound is runtime data the analysis cannot see)
        src = SourceFile(
            "def f(scheme, v, n):\n"
            "    ct = scheme.encrypt(v)\n"
            "    for _ in range(n):\n"
            "        ct = rescale_last(ct)\n"
            "    return ct\n",
            "m.py",
        )
        analysis = analyze_source(src)
        assert analysis.converged
        assert analysis.loop_iterations["f"] <= MAX_LOOP_ITERATIONS + 2
        assert not [
            f for f in analysis.findings if f.rule_id == "REPRO205"
        ]
        assert analysis.summaries["f"].level is None  # widened

    def test_state_stable_loop_converges_without_widening(self):
        src = SourceFile(
            "def f(ctx, xs, q):\n"
            "    acc = ctx.ntt_limbs(xs)\n"
            "    for x in [acc]:\n"
            "        acc = modadd_vec(acc, x, q)\n"
            "    return acc\n",
            "m.py",
        )
        analysis = analyze_source(src)
        assert analysis.converged
        assert analysis.loop_iterations["f"] <= MAX_LOOP_ITERATIONS

    def test_branch_join_suppresses_definite_checks(self):
        # the two arms disagree on the domain, so after the join the
        # value is unknown — pairing it must NOT fire REPRO201
        clean = (
            "def f(ctx, a, b, cond, q):\n"
            "    if cond:\n"
            "        x = ctx.ntt_limbs(a)\n"
            "    else:\n"
            "        x = ctx.plaintext_limbs(a)\n"
            "    y = ctx.plaintext_limbs(b)\n"
            "    return modadd_vec(x, y, q)\n"
        )
        assert fired("REPRO201", clean) == []

    def test_branch_join_keeps_agreeing_state(self):
        # both arms produce NTT-domain values: the join stays definite
        # and pairing with a coeff value must still fire
        text = (
            "def f(ctx, a, b, cond, q):\n"
            "    if cond:\n"
            "        x = ctx.ntt_limbs(a)\n"
            "    else:\n"
            "        x = ctx.ntt_limbs(b)\n"
            "    y = ctx.plaintext_limbs(b)\n"
            "    return modadd_vec(x, y, q)\n"
        )
        assert fired("REPRO201", text) == [7]

    def test_tuple_unpacking_and_subscript_preserve_state(self):
        text = (
            "def f(ctx, a, q):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    pair = (x, x)\n"
            "    y = pair[0]\n"
            "    z = ctx.plaintext_limbs(a)\n"
            "    return modadd_vec(y, z, q)\n"
        )
        assert fired("REPRO201", text) == [6]

    def test_unknown_values_never_fire(self):
        # parameters and unlisted calls carry no definite state: the
        # analysis must stay silent however they are combined
        clean = (
            "def f(a, b, q):\n"
            "    x = mystery(a)\n"
            "    return modadd_vec(x, b, q)\n"
        )
        for rid in DATAFLOW_IDS:
            assert fired(rid, clean) == []

    def test_analysis_is_cached_per_content(self):
        src = SourceFile("def f():\n    return 1\n", "cache_probe.py")
        assert analyze_source(src) is analyze_source(src)


# ---------------------------------------------------------------------------
# per-rule fixtures


class TestDomainMismatch:
    def test_fires_on_ntt_coeff_pairing(self):
        assert fired(
            "REPRO201",
            "def f(ctx, a, b, q):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    y = ctx.plaintext_limbs(b)\n"
            "    return modadd_vec(x, y, q)\n",
        ) == [4]

    def test_fires_on_double_forward_ntt(self):
        assert fired(
            "REPRO201",
            "def f(ctx, a):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    return ctx.ntt_limbs(x)\n",
        ) == [3]

    def test_fires_on_intt_of_coeff_value(self):
        assert fired(
            "REPRO201",
            "def f(ctx, a):\n"
            "    x = ctx.plaintext_limbs(a)\n"
            "    return ctx.intt_limbs(x)\n",
        ) == [3]

    def test_clean_on_matched_domains(self):
        assert fired(
            "REPRO201",
            "def f(ctx, a, b, q):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    y = ctx.ntt_limbs(b)\n"
            "    return modmul_vec(x, y, q)\n",
        ) == []

    def test_roundtrip_is_clean(self):
        assert fired(
            "REPRO201",
            "def f(ctx, a):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    back = ctx.intt_limbs(x)\n"
            "    return ctx.ntt_limbs(back)\n",
        ) == []

    def test_noqa_suppresses(self):
        text = (
            "def f(ctx, a, b, q):\n"
            "    x = ctx.ntt_limbs(a)\n"
            "    y = ctx.plaintext_limbs(b)\n"
            "    return modadd_vec(x, y, q)  # repro: noqa REPRO201\n"
        )
        assert fired("REPRO201", text) == []


class TestLevelMismatch:
    def test_fires_on_cross_level_add(self):
        assert fired(
            "REPRO202",
            "def f(scheme, v, w, q):\n"
            "    a = scheme.encrypt_vector(v)\n"
            "    b = rescale_last(scheme.encrypt_vector(w))\n"
            "    return modadd_vec(a, b, q)\n",
        ) == [4]

    def test_fires_on_operator_add(self):
        assert fired(
            "REPRO202",
            "def f(scheme, v, w):\n"
            "    a = scheme.encrypt_vector(v)\n"
            "    b = rescale_last(scheme.encrypt_vector(w))\n"
            "    return a + b\n",
        ) == [4]

    def test_clean_on_matched_levels(self):
        assert fired(
            "REPRO202",
            "def f(scheme, v, w, q):\n"
            "    a = rescale_last(scheme.encrypt_vector(v))\n"
            "    b = rescale_last(scheme.encrypt_vector(w))\n"
            "    return modadd_vec(a, b, q)\n",
        ) == []

    def test_noqa_suppresses(self):
        text = (
            "def f(scheme, v, w, q):\n"
            "    a = scheme.encrypt_vector(v)\n"
            "    b = rescale_last(scheme.encrypt_vector(w))\n"
            "    return modadd_vec(a, b, q)  # repro: noqa REPRO202\n"
        )
        assert fired("REPRO202", text) == []


class TestMultiplyWithoutRescale:
    def test_fires_on_pack_of_unrescaled_product(self):
        assert fired(
            "REPRO203",
            "def f(ct, pt, ctx):\n"
            "    prod = ct.multiply_plain(pt)\n"
            "    return pack_lwes(prod, ctx)\n",
        ) == [3]

    def test_fires_on_keyswitch_of_unrescaled_product(self):
        assert fired(
            "REPRO203",
            "def f(ct, pt, ksk):\n"
            "    prod = ct.multiply_plain_ntt(pt)\n"
            "    return apply_keyswitch(prod, ksk)\n",
        ) == [3]

    def test_clean_when_rescaled_first(self):
        assert fired(
            "REPRO203",
            "def f(ct, pt, ctx):\n"
            "    prod = ct.multiply_plain(pt)\n"
            "    prod = rescale_last(prod)\n"
            "    return pack_lwes(prod, ctx)\n",
        ) == []

    def test_noqa_suppresses(self):
        text = (
            "def f(ct, pt, ctx):\n"
            "    prod = ct.multiply_plain(pt)\n"
            "    return pack_lwes(prod, ctx)  # repro: noqa REPRO203\n"
        )
        assert fired("REPRO203", text) == []


class TestAugmentedBasisEscape:
    def test_fires_on_return_of_extended_value(self):
        assert fired(
            "REPRO204",
            "def f(basis, scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    up = basis.extend_to(ct)\n"
            "    return up\n",
        ) == [4]

    def test_fires_on_attribute_store(self):
        assert fired(
            "REPRO204",
            "class H:\n"
            "    def f(self, basis, scheme, v):\n"
            "        ct = scheme.encrypt(v)\n"
            "        self.saved = basis.extend_to(ct)\n",
        ) == [4]

    def test_fires_on_decrypt_of_aug_value(self):
        assert fired(
            "REPRO204",
            "def f(basis, scheme, v, sk):\n"
            "    ct = scheme.encrypt(v)\n"
            "    up = basis.extend_to(ct)\n"
            "    return decrypt(up, sk)\n",
        ) == [4]

    def test_clean_when_consumed_by_rescale(self):
        assert fired(
            "REPRO204",
            "def f(basis, scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    up = basis.extend_to(ct)\n"
            "    return rescale_last(up)\n",
        ) == []

    def test_clean_when_consumed_by_keyswitch(self):
        assert fired(
            "REPRO204",
            "def f(basis, scheme, v, ksk):\n"
            "    ct = scheme.encrypt(v)\n"
            "    up = basis.extend_to(ct)\n"
            "    return apply_keyswitch(up, ksk)\n",
        ) == []

    def test_noqa_suppresses(self):
        text = (
            "def f(basis, scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    up = basis.extend_to(ct)\n"
            "    return up  # repro: noqa REPRO204\n"
        )
        assert fired("REPRO204", text) == []


class TestChainUnderflow:
    def test_fires_past_the_chain_floor(self):
        assert fired(
            "REPRO205",
            "def f(scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    ct = rescale_last(ct)\n"
            "    ct = rescale_last(ct)\n"
            "    return ct\n",
        ) == [4]

    def test_single_rescale_is_clean(self):
        assert fired(
            "REPRO205",
            "def f(scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    return rescale_last(ct)\n",
        ) == []

    def test_unknown_level_is_clean(self):
        assert fired(
            "REPRO205",
            "def f(ct):\n"
            "    return rescale_last(rescale_last(ct))\n",
        ) == []

    def test_noqa_suppresses(self):
        text = (
            "def f(scheme, v):\n"
            "    ct = scheme.encrypt(v)\n"
            "    ct = rescale_last(ct)\n"
            "    ct = rescale_last(ct)  # repro: noqa REPRO205\n"
            "    return ct\n"
        )
        assert fired("REPRO205", text) == []


class TestStateLostInContainer:
    def test_fires_on_mixed_container_consumer(self):
        assert fired(
            "REPRO206",
            "def f(ctx, a, b, c):\n"
            "    xs = []\n"
            "    xs.append(ctx.ntt_limbs(a))\n"
            "    xs.append(ctx.plaintext_limbs(b))\n"
            "    return pack_lwes(xs[0], c)\n",
        ) == [5]

    def test_homogeneous_container_is_clean(self):
        assert fired(
            "REPRO206",
            "def f(ctx, a, b, c):\n"
            "    xs = []\n"
            "    xs.append(ctx.ntt_limbs(a))\n"
            "    xs.append(ctx.ntt_limbs(b))\n"
            "    return pack_lwes(xs[0], c)\n",
        ) == []

    def test_severity_is_warning(self):
        diags = run_rule(
            "REPRO206",
            "def f(ctx, a, b, c):\n"
            "    xs = [ctx.ntt_limbs(a), ctx.plaintext_limbs(b)]\n"
            "    return pack_lwes(xs[0], c)\n",
        )
        assert diags and all(d.severity == "warning" for d in diags)

    def test_noqa_suppresses(self):
        text = (
            "def f(ctx, a, b, c):\n"
            "    xs = [ctx.ntt_limbs(a), ctx.plaintext_limbs(b)]\n"
            "    return pack_lwes(xs[0], c)  # repro: noqa REPRO206\n"
        )
        assert fired("REPRO206", text) == []


# ---------------------------------------------------------------------------
# self-check + budget


class TestSelfCheck:
    def test_src_repro_is_clean_under_dataflow_rules(self):
        diags = lint_paths(
            [SRC], rules=get_rules(DATAFLOW_IDS), root=SRC.parents[1]
        )
        assert diags == [], "\n".join(d.format() for d in diags)

    def test_every_function_reaches_a_fixed_point(self):
        for path in sorted(SRC.rglob("*.py")):
            src = SourceFile.from_path(path, root=SRC.parents[1])
            analysis = analyze_source(src)
            assert analysis.converged, src.rel
            for qual, iters in analysis.loop_iterations.items():
                assert iters <= MAX_LOOP_ITERATIONS + 2, (src.rel, qual)

    def test_full_tree_fits_the_timing_budget(self):
        # the ISSUE-9 bar: the whole-tree dataflow + lock pass in <30 s
        start = time.monotonic()
        lint_paths(
            [SRC],
            rules=get_rules(DATAFLOW_IDS + ["REPRO210", "REPRO211"]),
            root=SRC.parents[1],
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, f"analysis took {elapsed:.1f}s"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
