"""Tests for LWE modulus switching and LWE→LWE key switching."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.lwe import extract_lwe
from repro.he.lwe_ops import (
    PlainLwe,
    decrypt_plain_lwe,
    generate_lwe_keyswitch_key,
    lwe_keyswitch,
    lwe_modswitch,
)
from repro.he.rlwe import encrypt


# modulus switching needs q_new >> t to retain message precision, so
# these tests use a small plaintext modulus (t ~ 2^16 against q' = 2^32)
@pytest.fixture(scope="module")
def small_t_setup():
    from repro.he.context import CheContext
    from repro.he.keys import generate_secret_key
    from repro.he.params import toy_params

    params = toy_params(n=128, plain_bits=16)
    ctx = CheContext(params, seed=2024)
    sk = generate_secret_key(ctx)
    return ctx, sk, CoefficientEncoder(params)


@pytest.fixture()
def ctx16(small_t_setup):
    return small_t_setup[0]


@pytest.fixture()
def sk16(small_t_setup):
    return small_t_setup[1]


@pytest.fixture()
def enc16(small_t_setup):
    return small_t_setup[2]


def make_lwe(ctx, sk, encoder, rng, value):
    coeffs = rng.integers(-1000, 1000, 128)
    coeffs[0] = value
    ct = encrypt(ctx, sk, encoder.encode_coeffs(coeffs), augmented=False)
    return extract_lwe(ct, 0)


def test_modswitch_preserves_message(ctx16, sk16, enc16, rng):
    for value in (-900, 0, 1, 777):
        lwe = make_lwe(ctx16, sk16, enc16, rng, value)
        small = lwe_modswitch(lwe, 1 << 32)
        got = decrypt_plain_lwe(ctx16, sk16.signed, small)
        assert got == value, value


def test_modswitch_rejects_upward(ctx16, sk16, enc16, rng):
    lwe = make_lwe(ctx16, sk16, enc16, rng, 5)
    with pytest.raises(ValueError):
        lwe_modswitch(lwe, ctx16.ct_basis.product * 2)


def test_modswitch_shrinks_wire_size(ctx16, sk16, enc16, rng):
    """The point of the exercise: (dim+1) words instead of RNS vectors."""
    lwe = make_lwe(ctx16, sk16, enc16, rng, 42)
    small = lwe_modswitch(lwe, 1 << 32)
    rns_words = lwe.a.size + lwe.b.size
    plain_words = small.dimension + 1
    assert plain_words < rns_words / 1.9


def test_plain_lwe_addition(ctx16, sk16, enc16, rng):
    a = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, 100), 1 << 32)
    b = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, -30), 1 << 32)
    got = decrypt_plain_lwe(ctx16, sk16.signed, a + b)
    assert got == 70


def test_plain_lwe_mismatch(ctx16, sk16, enc16, rng):
    a = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, 1), 1 << 32)
    b = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, 1), 1 << 30)
    with pytest.raises(ValueError):
        _ = a + b


def test_keyswitch_to_short_secret(ctx16, sk16, enc16, rng):
    """4096-style dimension reduction: 128 -> 32 coordinates."""
    q = 1 << 32
    dst_key = rng.integers(-1, 2, 32).astype(np.int64)
    ksk = generate_lwe_keyswitch_key(
        ctx16, sk16.signed % q, dst_key % q, q, base_bits=4
    )
    for value in (-500, 3, 250):
        lwe = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, value), q)
        switched = lwe_keyswitch(lwe, ksk)
        assert switched.dimension == 32
        got = decrypt_plain_lwe(ctx16, dst_key, switched)
        assert got == value, value


def test_keyswitch_modulus_mismatch(ctx16, sk16, enc16, rng):
    q = 1 << 32
    dst_key = rng.integers(-1, 2, 16).astype(np.int64)
    ksk = generate_lwe_keyswitch_key(ctx16, sk16.signed % q, dst_key % q, q)
    lwe = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, 1), 1 << 30)
    with pytest.raises(ValueError):
        lwe_keyswitch(lwe, ksk)


def test_keyswitch_noise_is_bounded(ctx16, sk16, enc16, rng):
    """Measured phase error stays well below the decryption margin."""
    q = 1 << 32
    t = ctx16.t
    dst_key = rng.integers(-1, 2, 32).astype(np.int64)
    ksk = generate_lwe_keyswitch_key(
        ctx16, sk16.signed % q, dst_key % q, q, base_bits=4
    )
    value = 123
    lwe = lwe_modswitch(make_lwe(ctx16, sk16, enc16, rng, value), q)
    switched = lwe_keyswitch(lwe, ksk)
    phase = (switched.b + int(np.dot(switched.a, dst_key.astype(object)))) % q
    if phase > q // 2:
        phase -= q
    ideal = round(q * value / t)
    assert abs(phase - ideal) < q / (4 * t)  # margin is q/(2t)


def test_full_shrink_pipeline(ctx16, sk16, enc16, rng):
    """extract -> modswitch -> dimension switch: the complete LWE export
    path of the conversion toolkit."""
    q = 1 << 34
    dst_key = rng.integers(-1, 2, 64).astype(np.int64)
    ksk = generate_lwe_keyswitch_key(
        ctx16, sk16.signed % q, dst_key % q, q, base_bits=4
    )
    value = -444
    rns_lwe = make_lwe(ctx16, sk16, enc16, rng, value)
    shrunk = lwe_keyswitch(lwe_modswitch(rns_lwe, q), ksk)
    assert decrypt_plain_lwe(ctx16, dst_key, shrunk) == value
    # size: (64+1) 34-bit words ~ 277 B vs the RNS LWE's 2*(128+1)*8 B
    assert (shrunk.dimension + 1) * 34 / 8 < 300
