"""BGV: the least-significant-bit-encoded sibling of BFV.

Completes the scheme trio the paper's introduction names (B/FV, CKKS,
TFHE-style LWE).  BGV stores the message in the *low* bits of the phase:

``c0 + c1 s = m + t e   (mod Q)``

against BFV's most-significant-bit embedding ``round(Q/t) m + e``.  Both
run on the identical substrate (rings, NTT units, key material), and the
two are famously interchangeable: one public scalar multiplication
moves between the embeddings, at the cost of a fixed *message factor*:

* BGV -> BFV: multiply the ciphertext by ``t^{-1} mod Q``; the result
  is a valid BFV encryption of ``-Q^{-1} * m mod t`` with the same
  small noise ``e``;
* BFV -> BGV: multiply by ``t mod Q``; the result encrypts
  ``-Q * m mod t``.

The two factors are exact inverses mod ``t``, so the round trip is the
identity; because they are public constants, callers multiply the
*decoded* message by the inverse of :func:`conversion_factor` — a
ciphertext-side correction would cost ~log2(t) noise bits and is never
needed.

Supported operations mirror what HMVP needs: encrypt/decrypt, addition,
plaintext multiplication (noise grows by ``||pt||`` — same as BFV), and
the coefficient-encoded dot product.  Modulus switching (BGV's native
noise management) is out of scope: CHAM's pipeline manages noise with
the single rescale-by-``p``, which BGV ciphertexts cannot share without
``t``-correction — documented limitation, enforced at the API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # typing-only: keep bgv import-light at runtime
    from .bfv import BfvScheme

import numpy as np

from ..math.modular import modadd_vec, modinv, modmul_vec, modneg_vec
from .context import CheContext
from .encoder import CoefficientEncoder, Plaintext
from .keys import SecretKey, generate_secret_key
from .params import CheParams, cham_params
from .rlwe import RlweCiphertext

__all__ = ["BgvScheme", "bgv_to_bfv", "bfv_to_bgv", "conversion_factor"]


class BgvScheme:
    """A minimal BGV instance over the CHAM substrate.

    BGV ciphertexts reuse :class:`RlweCiphertext` storage (normal basis
    only); the embedding is what differs, so conversion to/from BFV is a
    scalar multiplication.
    """

    def __init__(
        self,
        params: Optional[CheParams] = None,
        seed: Optional[int] = None,
        shared_secret: Optional[SecretKey] = None,
    ) -> None:
        self.params = params if params is not None else cham_params()
        self.ctx = CheContext(self.params, seed)
        self.encoder = CoefficientEncoder(self.params)
        self.secret_key = (
            shared_secret if shared_secret is not None else generate_secret_key(self.ctx)
        )

    @property
    def t(self) -> int:
        return self.params.plain_modulus

    # -- encryption ---------------------------------------------------------------

    def encrypt(self, pt: Plaintext) -> RlweCiphertext:
        """``(-(a s) + t e + m, a)`` over the normal basis."""
        ctx = self.ctx
        basis = ctx.ct_basis
        a = ctx.sample_uniform(basis)
        e = ctx.sample_error_signed()
        te = ctx.signed_to_limbs(e * self.t, basis)
        s = self.secret_key.limbs(ctx, basis)
        a_s = ctx.negacyclic_multiply(a, s, basis)
        m_limbs = ctx.signed_to_limbs(pt.centered(), basis)
        c0 = np.stack(
            [
                modadd_vec(
                    modadd_vec(modneg_vec(a_s[i], q), te[i], q), m_limbs[i], q
                )
                for i, q in enumerate(basis)
            ]
        )
        return RlweCiphertext(ctx, basis, c0, a)

    def encrypt_vector(self, values: Sequence[int]) -> RlweCiphertext:
        return self.encrypt(self.encoder.encode_vector(np.asarray(values)))

    def decrypt(self, ct: RlweCiphertext) -> Plaintext:
        """``(c0 + c1 s mod Q) mod t`` with the centered lift."""
        if ct.is_augmented:
            raise ValueError("BGV ciphertexts live in the normal basis")
        phase = ct.phase(self.secret_key)  # centered bigints
        t = self.t
        coeffs = np.asarray(np.mod(phase, t), dtype=np.uint64)
        return Plaintext(coeffs, t)

    def decrypt_coeffs(self, ct: RlweCiphertext, count: int) -> np.ndarray:
        return self.decrypt(ct).centered()[:count]

    # -- homomorphic operations -------------------------------------------------------

    def add(self, a: RlweCiphertext, b: RlweCiphertext) -> RlweCiphertext:
        return a + b

    def multiply_plain(self, ct: RlweCiphertext, pt: Plaintext) -> RlweCiphertext:
        """Same NTT pipeline as BFV; noise scales with ``||pt||`` and t."""
        return ct.multiply_plain(pt)

    def dot_product(self, ct: RlweCiphertext, row: Sequence[int]) -> RlweCiphertext:
        """Coefficient-encoded dot product (Eq. 1/2), BGV embedding."""
        return ct.multiply_plain(self.encoder.encode_row(np.asarray(row)))

    # -- diagnostics ----------------------------------------------------------------------

    def noise_bits(self, ct: RlweCiphertext) -> float:
        """log2 of the BGV noise ``e`` with ``phase = m + t e``."""
        import math

        phase = ct.phase(self.secret_key)
        t = self.t
        worst = 0
        for v in phase:
            m = int(v) % t
            if m > t // 2:
                m -= t
            e = (int(v) - m) // t
            worst = max(worst, abs(e))
        return math.log2(worst) if worst else 0.0


def bgv_to_bfv(bgv: BgvScheme, ct: RlweCiphertext) -> RlweCiphertext:
    """Embedding switch: the result is a BFV encryption of
    ``conversion_factor(params, "bgv->bfv") * m mod t`` at noise ``e``."""
    basis = ct.basis
    q_prod = basis.product
    k = modinv(bgv.t % q_prod, q_prod)
    c0 = np.stack(
        [modmul_vec(ct.c0[i], np.uint64(k % q), q) for i, q in enumerate(basis)]
    )
    c1 = np.stack(
        [modmul_vec(ct.c1[i], np.uint64(k % q), q) for i, q in enumerate(basis)]
    )
    return RlweCiphertext(ct.ctx, basis, c0, c1)


def bfv_to_bgv(bfv_scheme: "BfvScheme", ct: RlweCiphertext) -> RlweCiphertext:
    """Inverse switch: a BGV encryption of ``-Q * m mod t`` at noise ``e``."""
    if ct.is_augmented:
        raise ValueError("convert normal-basis ciphertexts (rescale first)")
    basis = ct.basis
    t = bfv_scheme.params.plain_modulus
    c0 = np.stack(
        [modmul_vec(ct.c0[i], np.uint64(t % q), q) for i, q in enumerate(basis)]
    )
    c1 = np.stack(
        [modmul_vec(ct.c1[i], np.uint64(t % q), q) for i, q in enumerate(basis)]
    )
    return RlweCiphertext(ct.ctx, basis, c0, c1)


def conversion_factor(params: CheParams, direction: str) -> int:
    """The public message factor a conversion applies (mod t).

    ``direction`` is ``"bgv->bfv"`` (factor ``-Q^{-1} mod t``) or
    ``"bfv->bgv"`` (factor ``-Q mod t``); the two are inverse mod ``t``.
    """
    t = params.plain_modulus
    q = params.q_product % t
    if direction == "bgv->bfv":
        return (-modinv(q, t)) % t
    if direction == "bfv->bgv":
        return (-q) % t
    raise ValueError(f"unknown direction {direction!r}")
