"""One-call reproduction report: every headline number, one markdown file.

``python -m repro report`` (or :func:`generate_report`) runs the
simulators and models end to end and writes a self-contained markdown
document mirroring EXPERIMENTS.md's structure with *freshly computed*
numbers — the artifact a reviewer diffs against the paper.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["generate_report"]


def _section_parameters() -> List[str]:
    from repro.he.params import cham_params

    p = cham_params()
    return [
        "## Parameters (§II-F)",
        "",
        f"- {p.describe()}",
        f"- ciphertext polynomials: {p.ct_poly_count} normal / "
        f"{p.ct_poly_count_aug} augmented (paper: 4 / 6)",
        f"- plaintext polynomials: {p.pt_poly_count} / {p.pt_poly_count_aug} "
        "(paper: 2 / 3)",
        "",
    ]


def _section_table2() -> List[str]:
    from repro.hw.arch import cham_default_config
    from repro.hw.resources import total_resources, utilization

    util = utilization(total_resources(cham_default_config()))
    paper = {"LUT": 63.68, "FF": 20.41, "BRAM": 72.13, "URAM": 61.98, "DSP": 29.04}
    lines = [
        "## Table II — resource utilization",
        "",
        "| class | model | paper |",
        "|---|---|---|",
    ]
    for key in ("LUT", "FF", "BRAM", "URAM", "DSP"):
        lines.append(f"| {key} | {util[key]:.2f}% | {paper[key]:.2f}% |")
    lines.append("")
    return lines


def _section_ntt() -> List[str]:
    from repro.hw.arch import NttUnitConfig, cham_default_config
    from repro.hw.perf import ChamPerfModel, CpuCostModel

    cham = ChamPerfModel()
    cpu = CpuCostModel()
    unit = NttUnitConfig()
    ks = cham.keyswitch_throughput()
    return [
        "## NTT and key-switch (Table III / §V-B1)",
        "",
        f"- NTT unit latency: {unit.cycles} cycles (paper: 6144)",
        f"- total NTT units: {cham_default_config().total_ntt_units} (paper: 60)",
        f"- NTT offload throughput: {cham.ntt_offload_throughput():,.0f} ops/s "
        "(paper: 195 k)",
        f"- key-switch: {ks:,.0f} ops/s, "
        f"{ks / cpu.keyswitch_throughput():.0f}x CPU (paper: 65 k @ 105x)",
        "",
    ]


def _section_roofline() -> List[str]:
    from repro.hw.roofline import roofline_points

    lines = [
        "## Fig. 2a — roofline",
        "",
        "| kernel | ops/B | of peak |",
        "|---|---|---|",
    ]
    for name, k in roofline_points().items():
        lines.append(
            f"| {name} | {k.intensity:.2f} | {100 * k.peak_fraction:.1f}% |"
        )
    lines.append("")
    return lines


def _section_dse() -> List[str]:
    from repro.hw.dse import enumerate_design_space, pareto_front

    points = enumerate_design_space(bench_rows=1024)
    front = pareto_front(points)
    deployed = next(
        p
        for p in points
        if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 2, 6, 4)
    )
    return [
        "## Fig. 2b — design space",
        "",
        f"- {len(points)} points, {sum(p.fits for p in points)} feasible, "
        f"{len(front)} on the frontier",
        f"- deployed point: {deployed.rows_per_sec:,.0f} rows/s at "
        f"{deployed.max_utilization_pct:.1f}% max utilization",
        "",
    ]


def _section_hmvp() -> List[str]:
    from repro.hw.perf import (
        ChamPerfModel,
        CpuCostModel,
        GpuCostModel,
        PaillierCostModel,
        hmvp_latency_all,
    )

    cham, cpu, gpu, pail = (
        ChamPerfModel(),
        CpuCostModel(),
        GpuCostModel(),
        PaillierCostModel(),
    )
    lines = [
        "## Fig. 6 / Fig. 8 — HMVP performance",
        "",
        "| matrix | CPU | GPU | CHAM | cham/gpu | pail/cham |",
        "|---|---|---|---|---|---|",
    ]
    for m, n in [(2048, 256), (8192, 4096), (16384, 4096)]:
        lat = hmvp_latency_all(m, n, cham, cpu, gpu)
        lines.append(
            f"| {m}x{n} | {lat['cpu']:.2f} s | {lat['gpu'] * 1e3:.0f} ms | "
            f"{lat['cham'] * 1e3:.0f} ms | {lat['cham'] / lat['gpu']:.2f} | "
            f"{pail.matvec_s(m, n) / lat['cham']:,.0f}x |"
        )
    lines.append("")
    lines.append("(paper anchors: cham/gpu 0.3-0.7, Paillier speedup up to ~1800x)")
    lines.append("")
    return lines


def _section_apps() -> List[str]:
    from repro.core.complexity import diagonal_cost
    from repro.hw.perf import ChamPerfModel, CpuCostModel, PaillierCostModel

    cham, cpu, pail = ChamPerfModel(), CpuCostModel(), PaillierCostModel()
    lr_small = (
        pail.encrypt_vec_s(2048)
        + pail.matvec_s(256, 2048)
        + pail.decrypt_vec_s(256)
        + 12.0
    ) / (cham.hmvp_s(256, 2048) + 12.0)
    lr_large = (
        pail.encrypt_vec_s(8192)
        + pail.matvec_s(8192, 8192)
        + pail.decrypt_vec_s(8192)
        + 12.0
    ) / (cham.hmvp_s(8192, 8192) + 12.0)
    cost = diagonal_cost(4096, 4096, 4096)
    beaver_base = (
        cost.rotations * cpu.keyswitch_ms * 1e-3
        + cost.he_multiplies * cpu.dot_product_s()
    )
    beaver = beaver_base / cham.hmvp_s(4096, 4096)
    return [
        "## Fig. 7 — applications",
        "",
        f"- HeteroLR end-to-end: {lr_small:.1f}x (small) .. {lr_large:.1f}x "
        "(8192x8192) — paper: 2x .. 36x",
        f"- Beaver triples (4096x4096 layer): {beaver:.0f}x over the Delphi "
        "baseline — paper band: 49x .. 144x",
        "",
    ]


def _section_noise() -> List[str]:
    import math

    from repro.he.noise import NoiseModel
    from repro.he.params import cham_params

    params = cham_params()
    model = NoiseModel(
        n=params.n,
        sigma=params.error_std,
        t=params.plain_modulus,
        q=params.q_product,
        p=params.special_modulus,
    )
    pre = model.multiply_plain(model.fresh_pk(), 2**16)
    ks = model.keyswitch(dnum=2, q_max=max(params.ct_moduli))
    packed = model.pack(model.rescale(pre), 12, ks)
    return [
        "## §III-A — noise claim",
        "",
        f"- pre-rescale (model): {math.log2(pre):.1f} bits (paper: ~30)",
        f"- after the full 4096-pack: {math.log2(packed):.1f} bits (paper: ~26)",
        "",
    ]


def generate_report(path: Optional[str] = None) -> str:
    """Compute every headline number and return (optionally write) the
    markdown report.

    Each section runs under a ``report.<name>`` span, so
    ``python -m repro report --trace-out FILE`` shows where the
    generation time goes (the DSE sweep dominates).
    """
    from repro import obs

    parts = [
        ("parameters", _section_parameters),
        ("table2", _section_table2),
        ("ntt", _section_ntt),
        ("roofline", _section_roofline),
        ("dse", _section_dse),
        ("hmvp", _section_hmvp),
        ("apps", _section_apps),
        ("noise", _section_noise),
    ]
    sections = [
        "# CHAM reproduction report",
        "",
        "Generated by `python -m repro report`.",
        "",
    ]
    for name, build in parts:
        with obs.span(f"report.{name}"):
            sections += build()
    text = "\n".join(sections)
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text
