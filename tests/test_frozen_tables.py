"""Regression tests: every lru_cache'd NumPy table is read-only.

Cached tables are shared by reference across every caller; a single
in-place mutation used to silently corrupt all subsequent NTTs,
automorphisms and CG schedules process-wide.  The tables are now frozen
(``writeable=False``) so mutation raises instead.
"""

import numpy as np
import pytest

from repro.math.cg_ntt import constant_geometry_schedule
from repro.math.ntt import NegacyclicNtt, _tables, bit_reverse_indices, ntt
from repro.math.polynomial import automorph, automorph_permutation
from repro.math.primes import CHAM_Q0, _factorize

N = 64
Q = CHAM_Q0


def test_bit_reverse_indices_frozen():
    perm = bit_reverse_indices(N)
    with pytest.raises(ValueError):
        perm[0] = 1
    # the cached object itself is still intact
    assert bit_reverse_indices(N)[0] == 0


def test_ntt_twiddle_tables_frozen():
    psis, inv_psis, _n_inv = _tables(N, Q)
    for table in (psis, inv_psis):
        with pytest.raises(ValueError):
            table[0] = 0


def test_automorph_permutation_frozen():
    src, flip = automorph_permutation(N, 3)
    with pytest.raises(ValueError):
        src[0] = 0
    with pytest.raises(ValueError):
        flip[0] = True


def test_cg_schedule_tables_frozen():
    sched = constant_geometry_schedule(N, Q)
    for table in (sched.twiddles, sched.inv_twiddles, sched.output_perm):
        with pytest.raises(ValueError):
            table.flat[0] = 0


def test_factorize_returns_immutable():
    assert isinstance(_factorize(360), tuple)
    assert _factorize(360) == (2, 3, 5)


def test_transforms_unaffected_after_mutation_attempt(rng):
    """A failed mutation must leave the shared state fully functional."""
    a = rng.integers(0, Q, N, dtype=np.uint64)
    before = ntt(a, Q)
    with pytest.raises(ValueError):
        _tables(N, Q)[0][0] = 123
    assert np.array_equal(ntt(a, Q), before)
    # automorph still round-trips through its frozen permutation tables
    k = 5
    k_inv = pow(k, -1, 2 * N)
    assert np.array_equal(automorph(automorph(a, k, Q), k_inv, Q), a)


def test_ntt_context_uses_frozen_tables():
    ctx = NegacyclicNtt(N, Q)
    assert not ctx._psis.flags.writeable
    assert not ctx._inv_psis.flags.writeable
